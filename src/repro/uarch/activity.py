"""Per-cycle, per-component switching-activity traces.

The simulator does not model voltages or currents directly; it records an
abstract *switching activity* quantity for each component on each cycle
(roughly "how many wire/transistor toggles happened here").  The EM
model later projects these traces through per-component coupling
coefficients to obtain the signal at the attacker's antenna.

Recording is two-phase for speed: the core appends lightweight
``(component, start_cycle, duration, amount_per_cycle)`` events to an
:class:`ActivityRecorder` during simulation, and :meth:`ActivityRecorder.finish`
materializes a dense ``[num_components, num_cycles]`` array once at the
end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.uarch.components import (
    COMPONENT_INDEX,
    COMPONENT_ORDER,
    Component,
    NUM_COMPONENTS,
)


@dataclass
class ActivityTrace:
    """Dense activity history: ``data[c, t]`` is component ``c``'s
    switching activity during cycle ``t``.

    Attributes
    ----------
    data:
        Array of shape ``(NUM_COMPONENTS, num_cycles)``, float64.
    clock_hz:
        Clock frequency the cycle axis corresponds to.
    """

    data: np.ndarray
    clock_hz: float

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 2 or self.data.shape[0] != NUM_COMPONENTS:
            raise SimulationError(
                f"activity trace must have shape ({NUM_COMPONENTS}, T), "
                f"got {self.data.shape}"
            )
        if self.clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {self.clock_hz}")

    @property
    def num_cycles(self) -> int:
        """Length of the trace in clock cycles."""
        return self.data.shape[1]

    @property
    def duration_s(self) -> float:
        """Wall-clock duration of the trace in seconds."""
        return self.num_cycles / self.clock_hz

    def component(self, component: Component) -> np.ndarray:
        """The per-cycle activity series of one component (a view)."""
        return self.data[COMPONENT_INDEX[component]]

    def totals(self) -> dict[Component, float]:
        """Total activity per component over the whole trace."""
        sums = self.data.sum(axis=1)
        return {component: float(sums[i]) for i, component in enumerate(COMPONENT_ORDER)}

    def mean_rates(self) -> np.ndarray:
        """Mean activity per cycle for each component (length-C vector)."""
        return self.data.mean(axis=1)

    def window(self, start_cycle: int, end_cycle: int) -> "ActivityTrace":
        """Sub-trace covering cycles ``[start_cycle, end_cycle)``."""
        if not 0 <= start_cycle < end_cycle <= self.num_cycles:
            raise SimulationError(
                f"invalid window [{start_cycle}, {end_cycle}) "
                f"for a {self.num_cycles}-cycle trace"
            )
        return ActivityTrace(self.data[:, start_cycle:end_cycle].copy(), self.clock_hz)

    def downsample(self, factor: int) -> "ActivityTrace":
        """Average the trace over non-overlapping blocks of ``factor`` cycles.

        The trailing partial block, if any, is dropped.  Downsampling is
        used to build the coarse activity envelope that the EM synthesis
        tiles over a full measurement interval.
        """
        if factor < 1:
            raise SimulationError(f"downsample factor must be >= 1, got {factor}")
        usable = (self.num_cycles // factor) * factor
        if usable == 0:
            raise SimulationError(
                f"trace of {self.num_cycles} cycles too short for factor {factor}"
            )
        blocks = self.data[:, :usable].reshape(NUM_COMPONENTS, usable // factor, factor)
        return ActivityTrace(blocks.mean(axis=2), self.clock_hz / factor)

    def project(self, weights: np.ndarray) -> np.ndarray:
        """Project the trace onto field modes: ``weights @ data``.

        Parameters
        ----------
        weights:
            Array of shape ``(num_modes, NUM_COMPONENTS)`` — per-mode,
            per-component coupling strengths.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(num_modes, num_cycles)``: the per-mode
            waveform seen by the antenna before noise.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim == 1:
            weights = weights[np.newaxis, :]
        if weights.shape[-1] != NUM_COMPONENTS:
            raise SimulationError(
                f"projection weights must have {NUM_COMPONENTS} columns, "
                f"got shape {weights.shape}"
            )
        return weights @ self.data


class ActivityRecorder:
    """Accumulates activity events during simulation.

    Events may extend past the currently known end of the trace (e.g. a
    divider still busy when the program halts); :meth:`finish` clips to
    the final cycle count.
    """

    def __init__(self, clock_hz: float) -> None:
        if clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self._components: list[int] = []
        self._starts: list[int] = []
        self._durations: list[int] = []
        self._amounts: list[float] = []

    def add(
        self,
        component: Component,
        start_cycle: int,
        duration: int,
        amount_per_cycle: float,
    ) -> None:
        """Record ``amount_per_cycle`` activity on ``component`` for
        ``duration`` cycles starting at ``start_cycle``."""
        if duration <= 0 or amount_per_cycle == 0.0:
            return
        if start_cycle < 0:
            raise SimulationError(f"negative start cycle {start_cycle}")
        self._components.append(COMPONENT_INDEX[component])
        self._starts.append(start_cycle)
        self._durations.append(duration)
        self._amounts.append(amount_per_cycle)

    def finish(self, num_cycles: int) -> ActivityTrace:
        """Materialize the dense :class:`ActivityTrace`.

        Parameters
        ----------
        num_cycles:
            Final length of the trace; events are clipped to this bound.
        """
        if num_cycles <= 0:
            raise SimulationError(f"trace length must be positive, got {num_cycles}")
        data = np.zeros((NUM_COMPONENTS, num_cycles), dtype=np.float64)
        for index, start, duration, amount in zip(
            self._components, self._starts, self._durations, self._amounts
        ):
            end = min(start + duration, num_cycles)
            if start < num_cycles:
                data[index, start:end] += amount
        return ActivityTrace(data, self.clock_hz)
