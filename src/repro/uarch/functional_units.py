"""Execution-unit timing and switching-activity models.

Two small value objects parameterize the core:

* :class:`FunctionalUnitTimings` — how many cycles each class of
  operation occupies the (in-order, blocking) pipeline.  The iterative
  integer divider is the stand-out: it stays busy for tens of cycles,
  which — combined with its per-cycle switching activity — is the
  mechanistic reason DIV can be far "louder" than ADD/SUB/MUL, as the
  paper observes on all three machines.
* :class:`ActivityModel` — how much abstract switching activity each
  operation deposits on each component per cycle.  Absolute scale is
  irrelevant (the calibrated EM couplings absorb it); only the *profile*
  across components matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FunctionalUnitTimings:
    """Occupancy (cycles) of each operation class.

    Defaults are representative of mid-2000s x86 laptop cores; the
    machine catalog overrides them per machine (e.g. the Pentium 3 M's
    slower divider).
    """

    alu_cycles: int = 1
    mov_cycles: int = 1
    lea_cycles: int = 1
    mul_cycles: int = 4
    div_cycles: int = 22
    branch_cycles: int = 1
    branch_mispredict_cycles: int = 12
    nop_cycles: int = 1

    def __post_init__(self) -> None:
        for name in (
            "alu_cycles",
            "mov_cycles",
            "lea_cycles",
            "mul_cycles",
            "div_cycles",
            "branch_cycles",
            "branch_mispredict_cycles",
            "nop_cycles",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {getattr(self, name)}")


@dataclass(frozen=True)
class ActivityModel:
    """Switching-activity quanta deposited by each operation class.

    Units are abstract "toggle units"; see the module docstring.  The
    per-cycle entries (``mul_per_cycle``, ``div_per_cycle``) multiply the
    unit's occupancy, so a 22-cycle divide deposits ~22x more divider
    activity than a 1-cycle add deposits ALU activity.
    """

    fetch: float = 1.0
    decode: float = 1.0
    regfile: float = 0.5
    alu_op: float = 1.0
    mov_op: float = 0.5
    agu_op: float = 1.0
    mul_per_cycle: float = 1.5
    div_per_cycle: float = 1.2
    bpred_lookup: float = 0.3
    flush_refetch: float = 3.0
    l1_access: float = 1.0
    l1_fill: float = 1.5
    l2_access: float = 4.0
    wb_buffer: float = 0.5
    bus_per_transfer: float = 8.0
    dram_per_transfer: float = 6.0

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if value < 0:
                raise ConfigurationError(f"activity quantum {name} must be >= 0, got {value}")
