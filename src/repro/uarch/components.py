"""The microarchitectural components whose activity the simulator tracks.

Every component here is a potential EM emitter: switching activity on it
drives currents whose fields couple (with component-specific strength and
field structure) into the attacker's antenna.  The set is chosen so that
each of the paper's eleven events excites a distinct activity profile:

* ``FETCH``/``DECODE``/``REGFILE`` — front-end work, identical for the
  surrounding (not-under-test) code of every event.
* ``ALU``/``MUL``/``DIV``/``AGU`` — execution units; the iterative
  divider stays busy for tens of cycles, which is why DIV can be "loud".
* ``BPRED`` — branch-direction predictor; mispredictions also replay
  fetch/decode activity (the Section VII branch events).
* ``L1D``/``L2``/``WB_BUFFER`` — on-chip memory structures.  STL2's
  dirty-eviction double access to L2 shows up here mechanistically.
* ``MEM_BUS``/``DRAM`` — off-chip structures; long board wires make them
  efficient far-field antennas, which the EM model exploits to reproduce
  the distance results.
"""

from __future__ import annotations

import enum


class Component(enum.Enum):
    """An EM-relevant microarchitectural component."""

    FETCH = "fetch"
    DECODE = "decode"
    REGFILE = "regfile"
    ALU = "alu"
    AGU = "agu"
    MUL = "mul"
    DIV = "div"
    BPRED = "bpred"
    L1D = "l1d"
    L2 = "l2"
    WB_BUFFER = "wb_buffer"
    MEM_BUS = "mem_bus"
    DRAM = "dram"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Canonical component ordering; activity arrays use this row order.
COMPONENT_ORDER: tuple[Component, ...] = tuple(Component)

#: Map from component to its row index in activity arrays.
COMPONENT_INDEX: dict[Component, int] = {
    component: index for index, component in enumerate(COMPONENT_ORDER)
}

#: Number of tracked components.
NUM_COMPONENTS: int = len(COMPONENT_ORDER)

#: Components physically located off-chip (package pins, board traces,
#: DRAM devices).  The propagation model gives these a larger far-field
#: fraction, reproducing the paper's 50/100 cm observations.
OFF_CHIP_COMPONENTS: frozenset[Component] = frozenset(
    {Component.MEM_BUS, Component.DRAM}
)
