"""Set-associative write-back cache with LRU replacement.

This is the substrate that makes the paper's memory events (LDM, STM,
LDL2, STL2, LDL1, STL1) arise mechanistically: the alternation kernel
sweeps pointers over arrays of chosen footprints, and the cache model
decides — from the actual address stream — which level services each
access and when dirty lines are written back.  The STL2 "two L2 accesses
per store" effect the paper discusses (fill plus dirty write-back) falls
out of this model rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line-size triple describing one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ConfigurationError(f"cache {name} must be a power of two, got {value}")
        if self.size_bytes < self.ways * self.line_bytes:
            raise ConfigurationError(
                f"cache of {self.size_bytes} B cannot hold {self.ways} ways "
                f"of {self.line_bytes} B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)

    def set_index(self, address: int) -> int:
        """Set index for a byte address."""
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        """Tag for a byte address."""
        return address // (self.line_bytes * self.num_sets)

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes


@dataclass
class CacheAccessResult:
    """Outcome of a single cache access.

    Attributes
    ----------
    hit:
        Whether the line was present.
    evicted_line:
        Line address of the victim evicted to make room for a fill, or
        ``None`` when no eviction happened (hit, or fill into an invalid
        way).
    evicted_dirty:
        Whether the evicted victim was dirty (must be written back to
        the next level).
    """

    hit: bool
    evicted_line: int | None = None
    evicted_dirty: bool = False


@dataclass
class CacheStats:
    """Counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over all accesses so far (0.0 if no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0


class _Line:
    """One cache line's bookkeeping (tag + dirty bit)."""

    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool) -> None:
        self.tag = tag
        self.dirty = dirty


@dataclass
class Cache:
    """A write-back, write-allocate, LRU set-associative cache.

    The cache tracks tags and dirty bits only — data values live in the
    simulator's flat memory model.  ``access`` performs the tag lookup,
    the LRU update, and (on a miss) the fill with victim selection, and
    reports whether a dirty victim needs writing back.
    """

    geometry: CacheGeometry
    name: str = "cache"
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        # Each set is a list of _Line in LRU order (front = LRU victim,
        # back = most recently used).
        self._sets: list[list[_Line]] = [[] for _ in range(self.geometry.num_sets)]

    def lookup(self, address: int) -> bool:
        """Non-modifying presence check (no LRU update, no stats)."""
        target_tag = self.geometry.tag(address)
        return any(line.tag == target_tag for line in self._sets[self.geometry.set_index(address)])

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Access ``address``; allocate on miss; return hit/eviction info.

        On a write hit the line is marked dirty.  On a miss the line is
        filled (write-allocate) and, for writes, immediately marked dirty.
        The caller (the hierarchy) is responsible for propagating the
        miss and any dirty write-back to the next level.
        """
        cache_set = self._sets[self.geometry.set_index(address)]
        target_tag = self.geometry.tag(address)
        self.stats.accesses += 1

        for position, line in enumerate(cache_set):
            if line.tag == target_tag:
                self.stats.hits += 1
                if is_write:
                    line.dirty = True
                # Move to MRU position.
                cache_set.append(cache_set.pop(position))
                return CacheAccessResult(hit=True)

        self.stats.misses += 1
        self.stats.fills += 1
        evicted_line: int | None = None
        evicted_dirty = False
        if len(cache_set) >= self.geometry.ways:
            victim = cache_set.pop(0)
            self.stats.evictions += 1
            evicted_dirty = victim.dirty
            if evicted_dirty:
                self.stats.dirty_evictions += 1
            set_index = self.geometry.set_index(address)
            evicted_line = (
                victim.tag * self.geometry.num_sets + set_index
            ) * self.geometry.line_bytes
        cache_set.append(_Line(target_tag, dirty=is_write))
        return CacheAccessResult(
            hit=False, evicted_line=evicted_line, evicted_dirty=evicted_dirty
        )

    def access_block(self, addresses, is_write: bool) -> None:
        """Batched :meth:`access`: identical state and statistics updates.

        Vectorizes the set-index/tag arithmetic for a whole address
        block with NumPy and runs the tag scan / LRU / fill bookkeeping
        in one tight loop, discarding the per-access results.  Used by
        the sweep pre-conditioning helpers, which only care about the
        final cache state.  Misses allocate exactly as in :meth:`access`
        (write-allocate; victims are simply dropped — propagating their
        write-backs is the hierarchy's job, which this method is not a
        substitute for).
        """
        import numpy as np

        address_array = np.ascontiguousarray(addresses, dtype=np.int64)
        line_ids = address_array // self.geometry.line_bytes
        num_sets = self.geometry.num_sets
        set_list = (line_ids % num_sets).tolist()
        tag_list = (line_ids // num_sets).tolist()
        ways = self.geometry.ways
        sets = self._sets
        stats = self.stats
        accesses = hits = misses = evictions = dirty_evictions = fills = 0

        for set_index, tag in zip(set_list, tag_list):
            cache_set = sets[set_index]
            accesses += 1
            hit = False
            for position, line in enumerate(cache_set):
                if line.tag == tag:
                    hits += 1
                    if is_write:
                        line.dirty = True
                    cache_set.append(cache_set.pop(position))
                    hit = True
                    break
            if hit:
                continue
            misses += 1
            fills += 1
            if len(cache_set) >= ways:
                victim = cache_set.pop(0)
                evictions += 1
                if victim.dirty:
                    dirty_evictions += 1
            cache_set.append(_Line(tag, is_write))

        stats.accesses += accesses
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        stats.fills += fills

    def invalidate_all(self) -> None:
        """Drop every line (used between independent measurements)."""
        self._sets = [[] for _ in range(self.geometry.num_sets)]

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(cache_set) for cache_set in self._sets)

    def dirty_lines(self) -> int:
        """Number of dirty lines currently held."""
        return sum(
            1 for cache_set in self._sets for line in cache_set if line.dirty
        )
