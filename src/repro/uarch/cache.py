"""Set-associative write-back cache with LRU replacement.

This is the substrate that makes the paper's memory events (LDM, STM,
LDL2, STL2, LDL1, STL1) arise mechanistically: the alternation kernel
sweeps pointers over arrays of chosen footprints, and the cache model
decides — from the actual address stream — which level services each
access and when dirty lines are written back.  The STL2 "two L2 accesses
per store" effect the paper discusses (fill plus dirty write-back) falls
out of this model rather than being hard-coded.

The state is struct-of-arrays: per level, a ``num_sets x ways`` tag
matrix, a dirty-bit matrix, and a per-set occupancy vector.  Within a
row, column 0 is the LRU victim and column ``occupancy - 1`` the MRU
line; columns at or past the occupancy are invalid.  The scalar
:meth:`Cache.access` walks one row; :func:`replay_stream` replays whole
address streams set-grouped ("wavefronts": the k-th access of every set
is updated simultaneously), which is what makes sweep priming cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line-size triple describing one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ConfigurationError(f"cache {name} must be a power of two, got {value}")
        if self.size_bytes < self.ways * self.line_bytes:
            raise ConfigurationError(
                f"cache of {self.size_bytes} B cannot hold {self.ways} ways "
                f"of {self.line_bytes} B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)

    def set_index(self, address: int) -> int:
        """Set index for a byte address."""
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        """Tag for a byte address."""
        return address // (self.line_bytes * self.num_sets)

    def line_address(self, address: int) -> int:
        """Address of the first byte of the line containing ``address``."""
        return (address // self.line_bytes) * self.line_bytes


@dataclass
class CacheAccessResult:
    """Outcome of a single cache access.

    Attributes
    ----------
    hit:
        Whether the line was present.
    evicted_line:
        Line address of the victim evicted to make room for a fill, or
        ``None`` when no eviction happened (hit, or fill into an invalid
        way).
    evicted_dirty:
        Whether the evicted victim was dirty (must be written back to
        the next level).
    """

    hit: bool
    evicted_line: int | None = None
    evicted_dirty: bool = False


#: Shared results for the two outcomes that carry no victim information.
#: They are never mutated (consumers only read the fields), so the hot
#: ``access`` path allocates a result object only when a line is evicted.
_HIT_RESULT = CacheAccessResult(hit=True)
_MISS_RESULT = CacheAccessResult(hit=False)


@dataclass
class CacheStats:
    """Counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over all accesses so far (0.0 if no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0


class _Line:
    """One cache line's bookkeeping (tag + dirty bit) — a *view* object.

    The engine itself stores no per-line objects; ``Cache._sets`` builds
    these on demand for introspection (tests, digests).
    """

    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool) -> None:
        self.tag = tag
        self.dirty = dirty


def replay_stream(
    tags: np.ndarray,
    dirty: np.ndarray,
    occupancy: np.ndarray,
    ways: int,
    set_indices: np.ndarray,
    target_tags: np.ndarray,
    writes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Replay an ordered access stream against one level's state arrays.

    The stream is grouped by set (stable sort, so per-set order is the
    stream order) and processed in *wavefronts*: iteration ``k`` updates
    the ``k``-th access of every set at once with pure array operations.
    Each wavefront touches each set at most once, so the gather/update/
    scatter below is exactly one sequential LRU access per set — the
    result is bit-identical to looping :meth:`Cache.access`.

    The loop works on a packed ``tag * 2 + dirty`` array so every LRU
    reorder moves one array instead of two, skips occupancy bookkeeping
    once every set is full (occupancy never changes again), and — when a
    wavefront covers every set — drops the gather/scatter entirely and
    updates the packed state in place.

    Parameters
    ----------
    tags, dirty, occupancy:
        The level's state arrays, updated in place.
    ways:
        Associativity (number of columns).
    set_indices, target_tags, writes:
        Equal-length 1-D arrays describing the stream in order.

    Returns
    -------
    tuple
        Per-access arrays ``(hit, evicted, victim_tag, victim_dirty)``
        in stream order; ``victim_tag``/``victim_dirty`` are only
        meaningful where ``evicted`` is True (zero/False elsewhere).
    """
    count = set_indices.shape[0]
    hit_out = np.zeros(count, dtype=bool)
    evicted_out = np.zeros(count, dtype=bool)
    victim_tag_out = np.zeros(count, dtype=np.int64)
    victim_dirty_out = np.zeros(count, dtype=bool)
    if count == 0:
        return hit_out, evicted_out, victim_tag_out, victim_dirty_out

    order = np.argsort(set_indices, kind="stable")
    sorted_sets = set_indices[order]
    new_group = np.empty(count, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=new_group[1:])
    group_starts = np.flatnonzero(new_group)
    group_counts = np.diff(np.append(group_starts, count))

    # Re-lay the stream out wavefront-major once, so the loop below is
    # pure slicing: ``rank`` is each access's position within its set's
    # run, and a stable sort by rank makes wavefront k's accesses (one
    # per set that still has a k-th access, in set order) contiguous.
    rank = np.arange(count, dtype=np.int64) - np.repeat(group_starts, group_counts)
    wf = np.argsort(rank, kind="stable")
    wf_counts = np.bincount(rank)
    boundaries = np.empty(wf_counts.shape[0] + 1, dtype=np.int64)
    boundaries[0] = 0
    np.cumsum(wf_counts, out=boundaries[1:])
    wf_stream_idx = order[wf]
    wf_rows = sorted_sets[wf]
    wf_tags = target_tags[wf_stream_idx]
    wf_writes = writes[wf_stream_idx]
    # Packed representation: one int64 per line, tag in the high bits and
    # the dirty bit in bit 0.  ``packed | 1 == tag * 2 + 1`` is the tag
    # compare; a hit ORs the write bit in; a miss inserts ``tag * 2 + w``.
    comb = tags * 2 + dirty
    wf_w = wf_writes.astype(np.int64)
    wf_new = wf_tags * 2 + wf_w
    wf_keys = wf_new | 1
    wf_hit = np.empty(count, dtype=bool)
    wf_evict = np.zeros(count, dtype=bool)
    wf_victim = np.zeros(count, dtype=np.int64)

    bounds = boundaries.tolist()
    num_sets = tags.shape[0]
    row_range = np.arange(int(wf_counts[0]), dtype=np.intp)
    way_ids = np.arange(ways, dtype=np.int64)
    last_way = ways - 1
    all_full = bool((occupancy == ways).all())
    for k in range(wf_counts.shape[0]):
        lo = bounds[k]
        hi = bounds[k + 1]
        n = hi - lo
        rows = wf_rows[lo:hi]
        ar = row_range[:n]
        # A wavefront's rows are strictly increasing, so covering every
        # set means ``rows`` is the identity — operate on ``comb``
        # directly with no gather/scatter.
        identity = n == num_sets

        if all_full:
            # Steady state: every set is full, the insert slot is always
            # the last way, and occupancy never changes again.
            row_comb = comb if identity else comb[rows]
            matches = (row_comb | 1) == wf_keys[lo:hi, None]
            # Position of the first (only) match; where no way matches,
            # argmax yields 0 and matches[row, 0] is False, so the same
            # gather also yields the hit flag.
            pos = matches.argmax(axis=1)
            hit = matches[ar, pos]
            if not hit.any():
                # Conflict-miss sweep: record every LRU victim, shift
                # every set left in place, append at MRU.
                wf_hit[lo:hi] = False
                wf_evict[lo:hi] = True
                wf_victim[lo:hi] = row_comb[:, 0]
                row_comb[:, :-1] = row_comb[:, 1:]
                row_comb[:, last_way] = wf_new[lo:hi]
                if not identity:
                    comb[rows] = row_comb
                continue
            if hit.all():
                # Pure LRU reorder: move the hit line to MRU, no victims.
                wf_hit[lo:hi] = True
                src = way_ids + (way_ids >= pos[:, None])
                np.minimum(src, last_way, out=src)
                moved = row_comb[ar[:, None], src]
                moved[:, last_way] = row_comb[ar, pos] | wf_w[lo:hi]
                if identity:
                    comb = moved
                else:
                    comb[rows] = moved
                continue
            evict = ~hit
            wf_hit[lo:hi] = hit
            wf_evict[lo:hi] = evict
            wf_victim[lo:hi] = np.where(evict, row_comb[:, 0], 0)
            p_remove = np.where(hit, pos, 0)
            src = way_ids + (way_ids >= p_remove[:, None])
            np.minimum(src, last_way, out=src)
            moved = row_comb[ar[:, None], src]
            moved[:, last_way] = np.where(
                hit, row_comb[ar, pos] | wf_w[lo:hi], wf_new[lo:hi]
            )
            if identity:
                comb = moved
            else:
                comb[rows] = moved
            continue

        row_comb = comb[rows]
        occ = occupancy[rows]
        full = occ == ways
        valid = way_ids < occ[:, None]
        matches = valid & ((row_comb | 1) == wf_keys[lo:hi, None])
        pos = matches.argmax(axis=1)
        hit = matches[ar, pos]
        miss = ~hit
        evict = miss & full

        wf_hit[lo:hi] = hit
        wf_evict[lo:hi] = evict
        wf_victim[lo:hi] = np.where(evict, row_comb[:, 0], 0)

        # Remove the hit line (at pos) or, on a full miss, the LRU line
        # (column 0); a non-full miss removes nothing (p_remove == occ,
        # past every shifted column).  Insert at the new MRU slot.
        p_remove = np.where(hit, pos, np.where(full, 0, occ))
        insert_pos = np.where(hit, occ - 1, np.where(full, last_way, occ))
        src = way_ids + (way_ids >= p_remove[:, None])
        np.minimum(src, last_way, out=src)
        moved = row_comb[ar[:, None], src]
        moved[ar, insert_pos] = np.where(
            hit, row_comb[ar, pos] | wf_w[lo:hi], wf_new[lo:hi]
        )
        comb[rows] = moved
        occupancy[rows] = occ + (miss & ~full)
        all_full = bool((occupancy == ways).all())
    np.right_shift(comb, 1, out=tags)
    np.not_equal(comb & 1, 0, out=dirty)
    hit_out[wf_stream_idx] = wf_hit
    evicted_out[wf_stream_idx] = wf_evict
    victim_tag_out[wf_stream_idx] = wf_victim >> 1
    victim_dirty_out[wf_stream_idx] = (wf_victim & 1) != 0
    return hit_out, evicted_out, victim_tag_out, victim_dirty_out


@dataclass
class Cache:
    """A write-back, write-allocate, LRU set-associative cache.

    The cache tracks tags and dirty bits only — data values live in the
    simulator's flat memory model.  ``access`` performs the tag lookup,
    the LRU update, and (on a miss) the fill with victim selection, and
    reports whether a dirty victim needs writing back.
    """

    geometry: CacheGeometry
    name: str = "cache"
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        geometry = self.geometry
        self._tags = np.zeros((geometry.num_sets, geometry.ways), dtype=np.int64)
        self._dirty = np.zeros((geometry.num_sets, geometry.ways), dtype=bool)
        self._occupancy = np.zeros(geometry.num_sets, dtype=np.int64)

    @property
    def _sets(self) -> list[list[_Line]]:
        """Per-set LRU-ordered line views (front = LRU victim, back = MRU).

        Built fresh on each read from the state arrays; mutations of the
        returned objects do not affect the cache.  Kept for tests and
        digests that inspect cache contents line by line.
        """
        tag_rows = self._tags.tolist()
        dirty_rows = self._dirty.tolist()
        occupancy = self._occupancy.tolist()
        return [
            [_Line(tag_row[i], dirty_row[i]) for i in range(occ)]
            for tag_row, dirty_row, occ in zip(tag_rows, dirty_rows, occupancy)
        ]

    def lookup(self, address: int) -> bool:
        """Non-modifying presence check (no LRU update, no stats)."""
        line_id = address // self.geometry.line_bytes
        num_sets = self.geometry.num_sets
        set_index = line_id % num_sets
        occupancy = int(self._occupancy[set_index])
        return (line_id // num_sets) in self._tags[set_index, :occupancy].tolist()

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Access ``address``; allocate on miss; return hit/eviction info.

        On a write hit the line is marked dirty.  On a miss the line is
        filled (write-allocate) and, for writes, immediately marked dirty.
        The caller (the hierarchy) is responsible for propagating the
        miss and any dirty write-back to the next level.
        """
        geometry = self.geometry
        line_id = address // geometry.line_bytes
        num_sets = geometry.num_sets
        set_index = line_id % num_sets
        target_tag = line_id // num_sets
        stats = self.stats
        stats.accesses += 1

        tags = self._tags[set_index]
        dirty = self._dirty[set_index]
        occupancy = int(self._occupancy[set_index])
        try:
            position = tags[:occupancy].tolist().index(target_tag)
        except ValueError:
            position = -1

        if position >= 0:
            stats.hits += 1
            line_dirty = bool(dirty[position]) or is_write
            if position != occupancy - 1:
                # Rotate [position+1, occupancy) down one slot; the MRU
                # slot then takes the accessed line.  NumPy buffers
                # overlapping basic-slice copies, so this is safe.
                tags[position : occupancy - 1] = tags[position + 1 : occupancy]
                dirty[position : occupancy - 1] = dirty[position + 1 : occupancy]
                tags[occupancy - 1] = target_tag
            dirty[occupancy - 1] = line_dirty
            return _HIT_RESULT

        stats.misses += 1
        stats.fills += 1
        if occupancy >= geometry.ways:
            victim_tag = int(tags[0])
            victim_dirty = bool(dirty[0])
            stats.evictions += 1
            if victim_dirty:
                stats.dirty_evictions += 1
            tags[: occupancy - 1] = tags[1:occupancy]
            dirty[: occupancy - 1] = dirty[1:occupancy]
            tags[occupancy - 1] = target_tag
            dirty[occupancy - 1] = is_write
            return CacheAccessResult(
                hit=False,
                evicted_line=(victim_tag * num_sets + set_index) * geometry.line_bytes,
                evicted_dirty=victim_dirty,
            )
        tags[occupancy] = target_tag
        dirty[occupancy] = is_write
        self._occupancy[set_index] = occupancy + 1
        return _MISS_RESULT

    def access_block(self, addresses, is_write: bool) -> None:
        """Batched :meth:`access`: identical state and statistics updates.

        Replays a whole address block through the set-grouped wavefront
        engine, discarding the per-access results.  Used by the sweep
        pre-conditioning helpers, which only care about the final cache
        state.  Misses allocate exactly as in :meth:`access`
        (write-allocate; victims are simply dropped — propagating their
        write-backs is the hierarchy's job, which this method is not a
        substitute for).
        """
        address_array = np.ascontiguousarray(addresses, dtype=np.int64)
        count = address_array.shape[0]
        if count == 0:
            return
        line_ids = address_array // self.geometry.line_bytes
        num_sets = self.geometry.num_sets
        hit, evicted, _victim_tag, victim_dirty = replay_stream(
            self._tags,
            self._dirty,
            self._occupancy,
            self.geometry.ways,
            line_ids % num_sets,
            line_ids // num_sets,
            np.broadcast_to(np.bool_(is_write), (count,)),
        )
        stats = self.stats
        hits = int(hit.sum())
        stats.accesses += count
        stats.hits += hits
        stats.misses += count - hits
        stats.fills += count - hits
        stats.evictions += int(evicted.sum())
        stats.dirty_evictions += int(victim_dirty.sum())

    def invalidate_all(self) -> None:
        """Drop every line (used between independent measurements)."""
        self._tags.fill(0)
        self._dirty.fill(False)
        self._occupancy.fill(0)

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return int(self._occupancy.sum())

    def dirty_lines(self) -> int:
        """Number of dirty lines currently held."""
        ways = self.geometry.ways
        valid = np.arange(ways, dtype=np.int64)[None, :] < self._occupancy[:, None]
        return int((self._dirty & valid).sum())

    def holds_lines_in_range(self, base: int, slots: int) -> bool:
        """True when any valid line's id falls in ``[base, base + slots)``."""
        num_sets = self.geometry.num_sets
        ways = self.geometry.ways
        valid = np.arange(ways, dtype=np.int64)[None, :] < self._occupancy[:, None]
        ids = self._tags * num_sets + np.arange(num_sets, dtype=np.int64)[:, None]
        return bool((valid & (ids >= base) & (ids < base + slots)).any())

    # ------------------------------------------------------------------
    # Ring-shift support for periodic steady-state extrapolation
    # ------------------------------------------------------------------
    def ring_shifted_state(
        self, rings: list[tuple[int, int]], shift: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """State arrays with every ring-resident line advanced ``shift`` slots.

        ``rings`` lists ``(base_line_id, num_slots)`` line-id intervals.
        When each ring's slot count is a multiple of ``num_sets``, the
        per-line map ``line -> base + (line - base + shift) % slots`` moves
        every set's contents wholesale to set ``(set + shift) % num_sets``
        preserving intra-set order, so the row axis simply rotates — a
        cache isomorphism.  Invalid entries are normalized to ``0``/
        ``False`` so the result is canonical (equality comparisons see
        only the valid region).  ``shift`` may be negative.
        """
        num_sets = self.geometry.num_sets
        ways = self.geometry.ways
        occupancy = self._occupancy
        valid = np.arange(ways, dtype=np.int64)[None, :] < occupancy[:, None]
        set_column = np.arange(num_sets, dtype=np.int64)[:, None]
        ids = self._tags * num_sets + set_column
        new_ids = ids
        for base, slots in rings:
            relative = ids - base
            in_ring = valid & (relative >= 0) & (relative < slots)
            new_ids = np.where(in_ring, base + (relative + shift) % slots, new_ids)
        row_shift = shift % num_sets
        new_tags = np.where(valid, new_ids // num_sets, 0)
        new_dirty = np.where(valid, self._dirty, False)
        return (
            np.roll(new_tags, row_shift, axis=0),
            np.roll(new_dirty, row_shift, axis=0),
            np.roll(occupancy, row_shift),
        )

    def apply_ring_shift(self, rings: list[tuple[int, int]], shift: int) -> None:
        """Replace the state with :meth:`ring_shifted_state` in place."""
        self._tags, self._dirty, self._occupancy = self.ring_shifted_state(rings, shift)
