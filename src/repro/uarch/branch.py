"""Branch predictor model.

Section VII lists "branch prediction hit/misses" first among the
microarchitectural activities beyond data caches whose SAVAT "may be
high and should be studied".  The core uses this classic two-bit
saturating-counter predictor: correctly predicted branches cost their
nominal cycle, mispredictions flush the front end — a burst of fetch and
decode activity plus a pipeline-depth penalty — which is exactly the
EM-visible difference the BRH/BRM events measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Two-bit counter states: 0-1 predict not-taken, 2-3 predict taken.
_WEAKLY_NOT_TAKEN = 1
_COUNTER_MAX = 3


@dataclass
class PredictorStats:
    """Prediction counters for one simulation."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches mispredicted (0.0 with no branches)."""
        return self.mispredictions / self.predictions if self.predictions else 0.0


@dataclass
class BranchPredictor:
    """Per-branch-address two-bit saturating counters.

    Counters start weakly-not-taken; a loop's backward branch therefore
    mispredicts once on entry and once on exit and predicts correctly in
    between — the behaviour the alternation kernels amortize away.
    """

    stats: PredictorStats = field(default_factory=PredictorStats)

    def __post_init__(self) -> None:
        self._counters: dict[int, int] = {}

    def predict(self, address: int) -> bool:
        """Predicted direction for the branch at ``address``."""
        return self._counters.get(address, _WEAKLY_NOT_TAKEN) >= 2

    def record(self, address: int, taken: bool) -> bool:
        """Update with the resolved direction; return True on mispredict."""
        prediction = self.predict(address)
        counter = self._counters.get(address, _WEAKLY_NOT_TAKEN)
        if taken:
            counter = min(counter + 1, _COUNTER_MAX)
        else:
            counter = max(counter - 1, 0)
        self._counters[address] = counter
        self.stats.predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted

    def reset(self) -> None:
        """Forget all history."""
        self._counters.clear()
        self.stats = PredictorStats()
