"""Two-level cache hierarchy with an off-chip memory behind it.

The hierarchy stitches the L1 and L2 :class:`~repro.uarch.cache.Cache`
models together with a flat DRAM and reports, for every access, which
level serviced it, how long it took, and how much secondary traffic
(fills, dirty write-backs, off-chip line transfers) it generated.  The
core turns that report into latency and per-component activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheGeometry, _Line


@dataclass(frozen=True)
class MemoryLatencies:
    """Access latencies (cycles) for each level of the hierarchy."""

    l1_cycles: int = 3
    l2_cycles: int = 14
    memory_cycles: int = 200

    def __post_init__(self) -> None:
        if not (0 < self.l1_cycles <= self.l2_cycles <= self.memory_cycles):
            raise ConfigurationError(
                "latencies must satisfy 0 < L1 <= L2 <= memory, got "
                f"{self.l1_cycles}/{self.l2_cycles}/{self.memory_cycles}"
            )


@dataclass
class MemoryAccessReport:
    """Everything a single load/store did to the memory system.

    Attributes
    ----------
    level:
        ``"L1"``, ``"L2"`` or ``"MEM"`` — the level that serviced the
        demand access.
    latency_cycles:
        Cycles the access stalls the (in-order, blocking) pipeline.
    l2_accesses:
        Number of L2 array accesses generated (demand fill and/or dirty
        L1 write-back).  The paper's STL2 discussion — each store that
        misses L1 but hits L2 causes *two* L2 accesses — shows up here.
    offchip_transfers:
        Number of full cache-line transfers on the processor-memory bus
        (demand fills from DRAM plus dirty L2 write-backs).
    l1_writeback:
        True if a dirty L1 victim was written back to L2.
    l2_writeback:
        True if a dirty L2 victim was written back to DRAM.
    """

    level: str
    latency_cycles: int
    l2_accesses: int = 0
    offchip_transfers: int = 0
    l1_writeback: bool = False
    l2_writeback: bool = False


@dataclass
class MemoryHierarchy:
    """L1 -> L2 -> DRAM, write-back/write-allocate at both cache levels."""

    l1_geometry: CacheGeometry
    l2_geometry: CacheGeometry
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)

    def __post_init__(self) -> None:
        if self.l2_geometry.size_bytes < self.l1_geometry.size_bytes:
            raise ConfigurationError(
                "L2 must be at least as large as L1 "
                f"({self.l2_geometry.size_bytes} < {self.l1_geometry.size_bytes})"
            )
        if self.l1_geometry.line_bytes != self.l2_geometry.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size in this model")
        self.l1 = Cache(self.l1_geometry, name="L1D")
        self.l2 = Cache(self.l2_geometry, name="L2")
        self.offchip_accesses = 0

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by both levels."""
        return self.l1_geometry.line_bytes

    def access(self, address: int, is_write: bool) -> MemoryAccessReport:
        """Perform one data access and report its hierarchy behaviour."""
        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return MemoryAccessReport(level="L1", latency_cycles=self.latencies.l1_cycles)

        l2_accesses = 0
        offchip = 0
        l2_writeback = False

        # Dirty L1 victim is written back into L2 before/while the fill
        # proceeds (no extra demand latency: write-back buffers hide it,
        # but the switching activity is real).
        l1_writeback = l1_result.evicted_dirty
        if l1_writeback:
            assert l1_result.evicted_line is not None
            wb_result = self.l2.access(l1_result.evicted_line, is_write=True)
            l2_accesses += 1
            if not wb_result.hit:
                # The victim's line had itself been evicted from L2; the
                # write-back allocates in L2 and may push a dirty L2 line
                # off-chip.
                if wb_result.evicted_dirty:
                    offchip += 1
                    l2_writeback = True
                    self.offchip_accesses += 1

        # Demand fill from L2 (or beyond).
        l2_result = self.l2.access(address, is_write=False)
        l2_accesses += 1
        if l2_result.hit:
            level = "L2"
            latency = self.latencies.l2_cycles
        else:
            level = "MEM"
            latency = self.latencies.memory_cycles
            offchip += 1
            self.offchip_accesses += 1
            if l2_result.evicted_dirty:
                offchip += 1
                l2_writeback = True
                self.offchip_accesses += 1

        return MemoryAccessReport(
            level=level,
            latency_cycles=latency,
            l2_accesses=l2_accesses,
            offchip_transfers=offchip,
            l1_writeback=l1_writeback,
            l2_writeback=l2_writeback,
        )

    def access_stream(self, addresses, is_write) -> None:
        """Replay a whole address stream through the hierarchy, batched.

        Performs exactly the same state transitions and statistics
        updates as calling :meth:`access` once per element — the final
        L1/L2 contents (tags, dirty bits, LRU order), all cache
        counters, and ``offchip_accesses`` are bit-identical — but the
        per-access set-index/tag arithmetic is vectorized up front with
        NumPy and the remaining bookkeeping runs in one tight loop with
        no per-access report objects.  The sweep-priming fast path uses
        this to collapse millions of warm-up accesses.

        Parameters
        ----------
        addresses:
            Byte addresses, any integer sequence or 1-D integer array.
        is_write:
            A single bool applied to every access, or a boolean sequence
            of the same length as ``addresses``.
        """
        address_array = np.ascontiguousarray(addresses, dtype=np.int64)
        if address_array.ndim != 1:
            raise ConfigurationError("access_stream expects a 1-D address stream")
        count = address_array.shape[0]
        if count == 0:
            return
        if isinstance(is_write, (bool, np.bool_)):
            writes = [bool(is_write)] * count
        else:
            write_array = np.ascontiguousarray(is_write, dtype=bool)
            if write_array.shape != (count,):
                raise ConfigurationError(
                    "is_write must be a bool or match the address stream length"
                )
            writes = write_array.tolist()

        line = self.l1_geometry.line_bytes
        n1 = self.l1_geometry.num_sets
        n2 = self.l2_geometry.num_sets
        ways1 = self.l1_geometry.ways
        ways2 = self.l2_geometry.ways

        line_ids = address_array // line
        l1_set_list = (line_ids % n1).tolist()
        l1_tag_list = (line_ids // n1).tolist()
        l2_set_list = (line_ids % n2).tolist()
        l2_tag_list = (line_ids // n2).tolist()

        l1_sets = self.l1._sets
        l2_sets = self.l2._sets
        l1_stats = self.l1.stats
        l2_stats = self.l2.stats
        l1_accesses = l1_hits = l1_misses = 0
        l1_evictions = l1_dirty_evictions = l1_fills = 0
        l2_accesses = l2_hits = l2_misses = 0
        l2_evictions = l2_dirty_evictions = l2_fills = 0
        offchip = 0

        for s1, t1, s2, t2, write in zip(
            l1_set_list, l1_tag_list, l2_set_list, l2_tag_list, writes
        ):
            # --- L1 access (mirror of Cache.access) ---
            cache_set = l1_sets[s1]
            l1_accesses += 1
            hit = False
            for position, entry in enumerate(cache_set):
                if entry.tag == t1:
                    l1_hits += 1
                    if write:
                        entry.dirty = True
                    cache_set.append(cache_set.pop(position))
                    hit = True
                    break
            if hit:
                continue
            l1_misses += 1
            l1_fills += 1
            victim_dirty = False
            victim_line_id = -1
            if len(cache_set) >= ways1:
                victim = cache_set.pop(0)
                l1_evictions += 1
                victim_dirty = victim.dirty
                if victim_dirty:
                    l1_dirty_evictions += 1
                    victim_line_id = victim.tag * n1 + s1
            cache_set.append(_Line(t1, write))

            # --- Dirty L1 victim written back into L2 before the fill
            # (same order as MemoryHierarchy.access) ---
            if victim_dirty:
                vs2 = victim_line_id % n2
                vt2 = victim_line_id // n2
                victim_set = l2_sets[vs2]
                l2_accesses += 1
                wb_hit = False
                for position, entry in enumerate(victim_set):
                    if entry.tag == vt2:
                        l2_hits += 1
                        entry.dirty = True
                        victim_set.append(victim_set.pop(position))
                        wb_hit = True
                        break
                if not wb_hit:
                    l2_misses += 1
                    l2_fills += 1
                    if len(victim_set) >= ways2:
                        l2_victim = victim_set.pop(0)
                        l2_evictions += 1
                        if l2_victim.dirty:
                            l2_dirty_evictions += 1
                            offchip += 1
                    victim_set.append(_Line(vt2, True))

            # --- Demand fill from L2 (or beyond); demand is a read ---
            demand_set = l2_sets[s2]
            l2_accesses += 1
            demand_hit = False
            for position, entry in enumerate(demand_set):
                if entry.tag == t2:
                    l2_hits += 1
                    demand_set.append(demand_set.pop(position))
                    demand_hit = True
                    break
            if not demand_hit:
                l2_misses += 1
                l2_fills += 1
                offchip += 1
                if len(demand_set) >= ways2:
                    l2_victim = demand_set.pop(0)
                    l2_evictions += 1
                    if l2_victim.dirty:
                        l2_dirty_evictions += 1
                        offchip += 1
                demand_set.append(_Line(t2, False))

        l1_stats.accesses += l1_accesses
        l1_stats.hits += l1_hits
        l1_stats.misses += l1_misses
        l1_stats.evictions += l1_evictions
        l1_stats.dirty_evictions += l1_dirty_evictions
        l1_stats.fills += l1_fills
        l2_stats.accesses += l2_accesses
        l2_stats.hits += l2_hits
        l2_stats.misses += l2_misses
        l2_stats.evictions += l2_evictions
        l2_stats.dirty_evictions += l2_dirty_evictions
        l2_stats.fills += l2_fills
        self.offchip_accesses += offchip

    def warm(self, addresses: list[int], is_write: bool) -> None:
        """Touch ``addresses`` once each to pre-condition cache state.

        The measurement methodology runs the alternation loop long before
        the instrument starts recording, so the caches are in steady
        state; tests and the measurement path use ``warm`` to reach that
        steady state without simulating the warm-up cycles.
        """
        for address in addresses:
            self.access(address, is_write)

    def reset(self) -> None:
        """Invalidate both caches and clear counters."""
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        self.l1.stats.__init__()
        self.l2.stats.__init__()
        self.offchip_accesses = 0
