"""Two-level cache hierarchy with an off-chip memory behind it.

The hierarchy stitches the L1 and L2 :class:`~repro.uarch.cache.Cache`
models together with a flat DRAM and reports, for every access, which
level serviced it, how long it took, and how much secondary traffic
(fills, dirty write-backs, off-chip line transfers) it generated.  The
core turns that report into latency and per-component activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheGeometry, replay_stream


@dataclass(frozen=True)
class MemoryLatencies:
    """Access latencies (cycles) for each level of the hierarchy."""

    l1_cycles: int = 3
    l2_cycles: int = 14
    memory_cycles: int = 200

    def __post_init__(self) -> None:
        if not (0 < self.l1_cycles <= self.l2_cycles <= self.memory_cycles):
            raise ConfigurationError(
                "latencies must satisfy 0 < L1 <= L2 <= memory, got "
                f"{self.l1_cycles}/{self.l2_cycles}/{self.memory_cycles}"
            )


@dataclass
class MemoryAccessReport:
    """Everything a single load/store did to the memory system.

    Attributes
    ----------
    level:
        ``"L1"``, ``"L2"`` or ``"MEM"`` — the level that serviced the
        demand access.
    latency_cycles:
        Cycles the access stalls the (in-order, blocking) pipeline.
    l2_accesses:
        Number of L2 array accesses generated (demand fill and/or dirty
        L1 write-back).  The paper's STL2 discussion — each store that
        misses L1 but hits L2 causes *two* L2 accesses — shows up here.
    offchip_transfers:
        Number of full cache-line transfers on the processor-memory bus
        (demand fills from DRAM plus dirty L2 write-backs).
    l1_writeback:
        True if a dirty L1 victim was written back to L2.
    l2_writeback:
        True if a dirty L2 victim was written back to DRAM.
    """

    level: str
    latency_cycles: int
    l2_accesses: int = 0
    offchip_transfers: int = 0
    l1_writeback: bool = False
    l2_writeback: bool = False


@dataclass
class MemoryHierarchy:
    """L1 -> L2 -> DRAM, write-back/write-allocate at both cache levels."""

    l1_geometry: CacheGeometry
    l2_geometry: CacheGeometry
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)

    def __post_init__(self) -> None:
        if self.l2_geometry.size_bytes < self.l1_geometry.size_bytes:
            raise ConfigurationError(
                "L2 must be at least as large as L1 "
                f"({self.l2_geometry.size_bytes} < {self.l1_geometry.size_bytes})"
            )
        if self.l1_geometry.line_bytes != self.l2_geometry.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size in this model")
        self.l1 = Cache(self.l1_geometry, name="L1D")
        self.l2 = Cache(self.l2_geometry, name="L2")
        self.offchip_accesses = 0

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by both levels."""
        return self.l1_geometry.line_bytes

    def access(self, address: int, is_write: bool) -> MemoryAccessReport:
        """Perform one data access and report its hierarchy behaviour."""
        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return MemoryAccessReport(level="L1", latency_cycles=self.latencies.l1_cycles)

        l2_accesses = 0
        offchip = 0
        l2_writeback = False

        # Dirty L1 victim is written back into L2 before/while the fill
        # proceeds (no extra demand latency: write-back buffers hide it,
        # but the switching activity is real).
        l1_writeback = l1_result.evicted_dirty
        if l1_writeback:
            assert l1_result.evicted_line is not None
            wb_result = self.l2.access(l1_result.evicted_line, is_write=True)
            l2_accesses += 1
            if not wb_result.hit:
                # The victim's line had itself been evicted from L2; the
                # write-back allocates in L2 and may push a dirty L2 line
                # off-chip.
                if wb_result.evicted_dirty:
                    offchip += 1
                    l2_writeback = True
                    self.offchip_accesses += 1

        # Demand fill from L2 (or beyond).
        l2_result = self.l2.access(address, is_write=False)
        l2_accesses += 1
        if l2_result.hit:
            level = "L2"
            latency = self.latencies.l2_cycles
        else:
            level = "MEM"
            latency = self.latencies.memory_cycles
            offchip += 1
            self.offchip_accesses += 1
            if l2_result.evicted_dirty:
                offchip += 1
                l2_writeback = True
                self.offchip_accesses += 1

        return MemoryAccessReport(
            level=level,
            latency_cycles=latency,
            l2_accesses=l2_accesses,
            offchip_transfers=offchip,
            l1_writeback=l1_writeback,
            l2_writeback=l2_writeback,
        )

    def _normalize_stream(self, addresses, is_write) -> tuple[np.ndarray, np.ndarray]:
        address_array = np.ascontiguousarray(addresses, dtype=np.int64)
        if address_array.ndim != 1:
            raise ConfigurationError("access_stream expects a 1-D address stream")
        count = address_array.shape[0]
        if isinstance(is_write, (bool, np.bool_)):
            writes = np.broadcast_to(np.bool_(is_write), (count,))
        else:
            writes = np.ascontiguousarray(is_write, dtype=bool)
            if writes.shape != (count,):
                raise ConfigurationError(
                    "is_write must be a bool or match the address stream length"
                )
        return address_array, writes

    def _replay(
        self, address_array: np.ndarray, writes: np.ndarray, want_reports: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Shared engine behind ``access_stream``/``access_stream_reports``.

        Runs the whole stream through L1 in wavefronts, derives the exact
        L2 access sequence the scalar path would have issued (dirty L1
        victim write-back, then the demand fill, per L1 miss in stream
        order), replays it through L2, and accounts off-chip transfers —
        all with array operations, no per-access Python loop.
        """
        count = address_array.shape[0]
        line = self.l1_geometry.line_bytes
        n1 = self.l1_geometry.num_sets
        n2 = self.l2_geometry.num_sets
        line_ids = address_array // line
        l1_sets = line_ids % n1

        l1 = self.l1
        l2 = self.l2
        hit1, evict1, victim_tag1, victim_dirty1 = replay_stream(
            l1._tags, l1._dirty, l1._occupancy, self.l1_geometry.ways,
            l1_sets, line_ids // n1, writes,
        )
        l1_hits = int(hit1.sum())
        l1_stats = l1.stats
        l1_stats.accesses += count
        l1_stats.hits += l1_hits
        l1_stats.misses += count - l1_hits
        l1_stats.fills += count - l1_hits
        l1_stats.evictions += int(evict1.sum())
        l1_stats.dirty_evictions += int(victim_dirty1.sum())

        miss_idx = np.flatnonzero(~hit1)
        if miss_idx.size == 0:
            if want_reports:
                zeros = np.zeros(count, dtype=np.int64)
                return zeros, zeros.copy(), zeros.copy()
            return None

        # Build the L2 stream the scalar loop would produce: for each L1
        # miss, first the dirty victim's write-back (if any), then the
        # demand fill as a read.
        wb = victim_dirty1[miss_idx]
        wb_int = wb.astype(np.int64)
        entry_counts = 1 + wb_int
        offsets = np.concatenate(([0], np.cumsum(entry_counts[:-1])))
        l2_total = int(entry_counts.sum())
        l2_line_ids = np.empty(l2_total, dtype=np.int64)
        l2_writes = np.zeros(l2_total, dtype=bool)
        demand_pos = offsets + wb_int
        l2_line_ids[demand_pos] = line_ids[miss_idx]
        wb_pos = offsets[wb]
        l2_line_ids[wb_pos] = victim_tag1[miss_idx][wb] * n1 + l1_sets[miss_idx][wb]
        l2_writes[wb_pos] = True

        hit2, evict2, _victim_tag2, victim_dirty2 = replay_stream(
            l2._tags, l2._dirty, l2._occupancy, self.l2_geometry.ways,
            l2_line_ids % n2, l2_line_ids // n2, l2_writes,
        )
        l2_hits = int(hit2.sum())
        l2_stats = l2.stats
        l2_stats.accesses += l2_total
        l2_stats.hits += l2_hits
        l2_stats.misses += l2_total - l2_hits
        l2_stats.fills += l2_total - l2_hits
        l2_stats.evictions += int(evict2.sum())
        l2_stats.dirty_evictions += int(victim_dirty2.sum())

        # Off-chip: every demand L2 miss fetches a line, and every dirty
        # L2 eviction (write-back or demand fill) pushes one out.
        offchip_per_entry = victim_dirty2.astype(np.int64) + (~hit2 & ~l2_writes)
        self.offchip_accesses += int(offchip_per_entry.sum())

        if not want_reports:
            return None
        demand_hit = hit2[demand_pos]
        level = np.zeros(count, dtype=np.int64)
        level[miss_idx] = np.where(demand_hit, 1, 2)
        l2_accesses = np.zeros(count, dtype=np.int64)
        l2_accesses[miss_idx] = entry_counts
        per_miss_offchip = offchip_per_entry[demand_pos]
        per_miss_offchip[wb] += offchip_per_entry[wb_pos]
        offchip = np.zeros(count, dtype=np.int64)
        offchip[miss_idx] = per_miss_offchip
        return level, l2_accesses, offchip

    def access_stream(self, addresses, is_write) -> None:
        """Replay a whole address stream through the hierarchy, batched.

        Performs exactly the same state transitions and statistics
        updates as calling :meth:`access` once per element — the final
        L1/L2 contents (tags, dirty bits, LRU order), all cache
        counters, and ``offchip_accesses`` are bit-identical — but the
        whole stream is processed with the set-grouped wavefront engine
        (:func:`repro.uarch.cache.replay_stream`): no per-access Python
        loop, no list round-trips, no per-access report objects.  The
        sweep-priming fast path uses this to collapse millions of
        warm-up accesses.

        Parameters
        ----------
        addresses:
            Byte addresses, any integer sequence or 1-D integer array.
        is_write:
            A single bool applied to every access, or a boolean sequence
            of the same length as ``addresses``.
        """
        address_array, writes = self._normalize_stream(addresses, is_write)
        if address_array.shape[0] == 0:
            return
        self._replay(address_array, writes, want_reports=False)

    def access_stream_reports(
        self, addresses, is_write
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`access_stream`, but return per-access report arrays.

        Returns ``(level, l2_accesses, offchip_transfers)`` int64 arrays
        in stream order, where ``level`` codes the servicing level as
        0 = L1, 1 = L2, 2 = MEM — the fields of
        :class:`MemoryAccessReport` that determine latency and activity.
        The steady-state loop replay uses this to cost a whole loop's
        memory accesses in one call.
        """
        address_array, writes = self._normalize_stream(addresses, is_write)
        if address_array.shape[0] == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        reports = self._replay(address_array, writes, want_reports=True)
        assert reports is not None
        return reports

    # ------------------------------------------------------------------
    # Periodic steady-state (ring shift) support
    # ------------------------------------------------------------------
    def ring_shift_eligible(self, rings: list[tuple[int, int]]) -> bool:
        """True when advancing every ring by ``c`` slots is a cache isomorphism.

        Each ring is ``(base_line_id, num_slots)``.  The per-ring rotation
        moves sets uniformly — preserving set structure, intra-set LRU
        order, and dirty bits — iff every ring's slot count is a multiple
        of both levels' set counts.
        """
        n1 = self.l1_geometry.num_sets
        n2 = self.l2_geometry.num_sets
        return bool(rings) and all(
            slots > 0 and slots % n1 == 0 and slots % n2 == 0 for _base, slots in rings
        )

    def ring_shift_plan(
        self, rings: list[tuple[int, int]]
    ) -> list[tuple[int, int]] | None:
        """Eligibility with a dynamic escape hatch for L1-sized rings.

        Returns ``None`` when the rotation can never be an isomorphism
        (some ring's slot count is not a multiple of the L1 set count —
        every accessed line passes through L1, so L1 divisibility is
        unconditional).  Otherwise returns the sub-list of rings whose
        slot count is *not* a multiple of the L2 set count: for those the
        rotation is sound only while none of their lines are resident in
        L2 (then the L2 half of the map is vacuous), which the caller
        must verify with :meth:`rings_absent_from_l2` at every snapshot
        it compares or shifts.  An empty list means unconditionally
        eligible.
        """
        n1 = self.l1_geometry.num_sets
        n2 = self.l2_geometry.num_sets
        if not rings or any(slots <= 0 or slots % n1 != 0 for _base, slots in rings):
            return None
        return [ring for ring in rings if ring[1] % n2 != 0]

    def rings_absent_from_l2(self, rings: list[tuple[int, int]]) -> bool:
        """True when no line of any listed ring is currently valid in L2."""
        return not any(self.l2.holds_lines_in_range(base, slots) for base, slots in rings)

    def canonical_ring_state(self, rings: list[tuple[int, int]], shift: int):
        """Hierarchy state with all ring lines shifted — a comparable snapshot.

        Shifting by the *negative* of the slots already swept yields a
        pass-invariant canonical form: two snapshots taken a whole number
        of passes apart are equal exactly when the hierarchy has entered
        its pass-periodic steady state.
        """
        return (
            self.l1.ring_shifted_state(rings, shift),
            self.l2.ring_shifted_state(rings, shift),
        )

    def apply_ring_shift(self, rings: list[tuple[int, int]], shift: int) -> None:
        """Advance every ring-resident line by ``shift`` slots, in place."""
        self.l1.apply_ring_shift(rings, shift)
        self.l2.apply_ring_shift(rings, shift)

    def counters(self) -> tuple[dict, dict, int]:
        """Snapshot of every hierarchy counter (both levels + off-chip)."""
        return (
            vars(self.l1.stats).copy(),
            vars(self.l2.stats).copy(),
            self.offchip_accesses,
        )

    def add_counters(self, delta: tuple[dict, dict, int], times: int = 1) -> None:
        """Add ``times`` multiples of a counter delta (see :meth:`counters`)."""
        l1_delta, l2_delta, offchip_delta = delta
        for stats, values in ((self.l1.stats, l1_delta), (self.l2.stats, l2_delta)):
            for name, value in values.items():
                setattr(stats, name, getattr(stats, name) + value * times)
        self.offchip_accesses += offchip_delta * times

    def warm(self, addresses: list[int], is_write: bool) -> None:
        """Touch ``addresses`` once each to pre-condition cache state.

        The measurement methodology runs the alternation loop long before
        the instrument starts recording, so the caches are in steady
        state; tests and the measurement path use ``warm`` to reach that
        steady state without simulating the warm-up cycles.
        """
        for address in addresses:
            self.access(address, is_write)

    def reset(self) -> None:
        """Invalidate both caches and clear counters."""
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        self.l1.stats.__init__()
        self.l2.stats.__init__()
        self.offchip_accesses = 0
