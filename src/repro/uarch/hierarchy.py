"""Two-level cache hierarchy with an off-chip memory behind it.

The hierarchy stitches the L1 and L2 :class:`~repro.uarch.cache.Cache`
models together with a flat DRAM and reports, for every access, which
level serviced it, how long it took, and how much secondary traffic
(fills, dirty write-backs, off-chip line transfers) it generated.  The
core turns that report into latency and per-component activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheGeometry


@dataclass(frozen=True)
class MemoryLatencies:
    """Access latencies (cycles) for each level of the hierarchy."""

    l1_cycles: int = 3
    l2_cycles: int = 14
    memory_cycles: int = 200

    def __post_init__(self) -> None:
        if not (0 < self.l1_cycles <= self.l2_cycles <= self.memory_cycles):
            raise ConfigurationError(
                "latencies must satisfy 0 < L1 <= L2 <= memory, got "
                f"{self.l1_cycles}/{self.l2_cycles}/{self.memory_cycles}"
            )


@dataclass
class MemoryAccessReport:
    """Everything a single load/store did to the memory system.

    Attributes
    ----------
    level:
        ``"L1"``, ``"L2"`` or ``"MEM"`` — the level that serviced the
        demand access.
    latency_cycles:
        Cycles the access stalls the (in-order, blocking) pipeline.
    l2_accesses:
        Number of L2 array accesses generated (demand fill and/or dirty
        L1 write-back).  The paper's STL2 discussion — each store that
        misses L1 but hits L2 causes *two* L2 accesses — shows up here.
    offchip_transfers:
        Number of full cache-line transfers on the processor-memory bus
        (demand fills from DRAM plus dirty L2 write-backs).
    l1_writeback:
        True if a dirty L1 victim was written back to L2.
    l2_writeback:
        True if a dirty L2 victim was written back to DRAM.
    """

    level: str
    latency_cycles: int
    l2_accesses: int = 0
    offchip_transfers: int = 0
    l1_writeback: bool = False
    l2_writeback: bool = False


@dataclass
class MemoryHierarchy:
    """L1 -> L2 -> DRAM, write-back/write-allocate at both cache levels."""

    l1_geometry: CacheGeometry
    l2_geometry: CacheGeometry
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)

    def __post_init__(self) -> None:
        if self.l2_geometry.size_bytes < self.l1_geometry.size_bytes:
            raise ConfigurationError(
                "L2 must be at least as large as L1 "
                f"({self.l2_geometry.size_bytes} < {self.l1_geometry.size_bytes})"
            )
        if self.l1_geometry.line_bytes != self.l2_geometry.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size in this model")
        self.l1 = Cache(self.l1_geometry, name="L1D")
        self.l2 = Cache(self.l2_geometry, name="L2")
        self.offchip_accesses = 0

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by both levels."""
        return self.l1_geometry.line_bytes

    def access(self, address: int, is_write: bool) -> MemoryAccessReport:
        """Perform one data access and report its hierarchy behaviour."""
        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return MemoryAccessReport(level="L1", latency_cycles=self.latencies.l1_cycles)

        l2_accesses = 0
        offchip = 0
        l2_writeback = False

        # Dirty L1 victim is written back into L2 before/while the fill
        # proceeds (no extra demand latency: write-back buffers hide it,
        # but the switching activity is real).
        l1_writeback = l1_result.evicted_dirty
        if l1_writeback:
            assert l1_result.evicted_line is not None
            wb_result = self.l2.access(l1_result.evicted_line, is_write=True)
            l2_accesses += 1
            if not wb_result.hit:
                # The victim's line had itself been evicted from L2; the
                # write-back allocates in L2 and may push a dirty L2 line
                # off-chip.
                if wb_result.evicted_dirty:
                    offchip += 1
                    l2_writeback = True
                    self.offchip_accesses += 1

        # Demand fill from L2 (or beyond).
        l2_result = self.l2.access(address, is_write=False)
        l2_accesses += 1
        if l2_result.hit:
            level = "L2"
            latency = self.latencies.l2_cycles
        else:
            level = "MEM"
            latency = self.latencies.memory_cycles
            offchip += 1
            self.offchip_accesses += 1
            if l2_result.evicted_dirty:
                offchip += 1
                l2_writeback = True
                self.offchip_accesses += 1

        return MemoryAccessReport(
            level=level,
            latency_cycles=latency,
            l2_accesses=l2_accesses,
            offchip_transfers=offchip,
            l1_writeback=l1_writeback,
            l2_writeback=l2_writeback,
        )

    def warm(self, addresses: list[int], is_write: bool) -> None:
        """Touch ``addresses`` once each to pre-condition cache state.

        The measurement methodology runs the alternation loop long before
        the instrument starts recording, so the caches are in steady
        state; tests and the measurement path use ``warm`` to reach that
        steady state without simulating the warm-up cycles.
        """
        for address in addresses:
            self.access(address, is_write)

    def reset(self) -> None:
        """Invalidate both caches and clear counters."""
        self.l1.invalidate_all()
        self.l2.invalidate_all()
        self.l1.stats.__init__()
        self.l2.stats.__init__()
        self.offchip_accesses = 0
