"""Microarchitectural substrate: caches, core, activity traces."""

from repro.uarch.activity import ActivityRecorder, ActivityTrace
from repro.uarch.cache import Cache, CacheAccessResult, CacheGeometry, CacheStats
from repro.uarch.components import (
    COMPONENT_INDEX,
    COMPONENT_ORDER,
    Component,
    NUM_COMPONENTS,
    OFF_CHIP_COMPONENTS,
)
from repro.uarch.core import (
    Core,
    DEFAULT_MAX_INSTRUCTIONS,
    ExecutionStats,
    SimulationResult,
)
from repro.uarch.functional_units import ActivityModel, FunctionalUnitTimings
from repro.uarch.hierarchy import MemoryAccessReport, MemoryHierarchy, MemoryLatencies

__all__ = [
    "ActivityModel",
    "ActivityRecorder",
    "ActivityTrace",
    "COMPONENT_INDEX",
    "COMPONENT_ORDER",
    "Cache",
    "CacheAccessResult",
    "CacheGeometry",
    "CacheStats",
    "Component",
    "Core",
    "DEFAULT_MAX_INSTRUCTIONS",
    "ExecutionStats",
    "FunctionalUnitTimings",
    "MemoryAccessReport",
    "MemoryHierarchy",
    "MemoryLatencies",
    "NUM_COMPONENTS",
    "OFF_CHIP_COMPONENTS",
    "SimulationResult",
]
