"""Global switch between the vectorized fast path and the reference path.

The simulator keeps two implementations of its hot loops: the original
scalar *reference* path (one Python-level step per access/instruction)
and a vectorized *fast* path (NumPy sweep priming, steady-state loop
replay, array-backed activity recording).  The two are bit-identical —
``tests/core/test_fastpath_bit_identity.py`` proves it on every paper
event — so the fast path is on by default and the reference path is
kept as the executable specification.

Control:

* ``SAVAT_REFERENCE_PATH=1`` in the environment forces the reference
  path process-wide (workers spawned by the campaign executor inherit
  it).
* :func:`use_reference_path` / :func:`use_fast_path` force a path for a
  ``with`` block (tests use these to compare the two).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Version of the simulator's observable semantics.  Bump whenever a
#: change to the microarchitectural model, the activity recording, or
#: the kernel codegen alters the traces it produces: cached kernel
#: traces (:mod:`repro.core.trace_cache`) embed this in their content
#: key, so stale traces from an older simulator miss instead of
#: replaying outdated activity.
UARCH_SCHEMA_VERSION = 1

#: Environment variable that disables the fast path when set truthy.
REFERENCE_PATH_ENV = "SAVAT_REFERENCE_PATH"

#: Environment variable that disables periodic steady-state extrapolation
#: during sweep priming when set falsy (it is on by default; the result
#: is bit-identical either way, so this knob exists for debugging and for
#: timing the pure wavefront replay).
PRIME_EXTRAPOLATE_ENV = "SAVAT_PRIME_EXTRAPOLATE"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}

#: Per-process override installed by the context managers (None: follow
#: the environment).
_forced: bool | None = None


def fast_path_enabled() -> bool:
    """True when the vectorized fast path should be used."""
    if _forced is not None:
        return _forced
    return os.environ.get(REFERENCE_PATH_ENV, "").strip().lower() not in _TRUTHY


def prime_extrapolation_enabled() -> bool:
    """True when sweep priming may extrapolate the pass-periodic steady state."""
    return os.environ.get(PRIME_EXTRAPOLATE_ENV, "").strip().lower() not in _FALSY


def set_fast_path(enabled: bool | None) -> None:
    """Force the fast path on/off, or ``None`` to follow the environment."""
    global _forced
    _forced = enabled


@contextmanager
def use_reference_path() -> Iterator[None]:
    """Force the scalar reference path within a ``with`` block."""
    previous = _forced
    set_fast_path(False)
    try:
        yield
    finally:
        set_fast_path(previous)


@contextmanager
def use_fast_path() -> Iterator[None]:
    """Force the vectorized fast path within a ``with`` block."""
    previous = _forced
    set_fast_path(True)
    try:
        yield
    finally:
        set_fast_path(previous)


__all__ = [
    "PRIME_EXTRAPOLATE_ENV",
    "REFERENCE_PATH_ENV",
    "UARCH_SCHEMA_VERSION",
    "fast_path_enabled",
    "prime_extrapolation_enabled",
    "set_fast_path",
    "use_fast_path",
    "use_reference_path",
]
