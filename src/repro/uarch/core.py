"""Cycle-level in-order core: executes programs and records activity.

The core is a functional-plus-timing interpreter.  It executes the
x86-like subset architecturally (registers, flags, flat memory) while
charging cycles and depositing per-component switching activity
according to the machine's :class:`~repro.uarch.functional_units`
models and the cache hierarchy's access reports.

Modeling choices (documented trade-offs):

* **In-order, blocking.**  The alternation kernels are tight dependent
  loops, so out-of-order overlap would mostly hide L1 latency; we model
  that by charging L1 hits a single effective cycle while charging L2
  and off-chip accesses their full latency.
* **Two-bit branch prediction.**  The kernel's loop branches are
  monotonically taken and predict almost perfectly after warm-up; the
  predictor model exists for the Section VII branch events (BRH/BRM),
  where mispredictions flush the front end with a visible activity
  burst.
* **Write-back buffering.**  Dirty write-backs cost activity (L2/bus/
  DRAM switching) but no demand latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.isa.instructions import (
    Immediate,
    Instruction,
    MemoryOperand,
    Opcode,
    Operand,
    Register,
    WORD_MASK,
)
from repro.isa.program import Program
from repro.uarch.activity import ActivityRecorder, ActivityTrace
from repro.uarch.branch import BranchPredictor
from repro.uarch.cache import CacheGeometry
from repro.uarch.components import Component
from repro.uarch.fastpath import fast_path_enabled
from repro.uarch.functional_units import ActivityModel, FunctionalUnitTimings
from repro.uarch.hierarchy import MemoryAccessReport, MemoryHierarchy, MemoryLatencies

#: Default cap on executed instructions, as a runaway-loop backstop.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000

#: Architectural register file (also the shell cores used for template
#: capture start from this set).
_REGISTER_NAMES = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")

#: Memory hierarchy levels in :meth:`MemoryHierarchy.access_stream_reports`
#: level-code order.
_LEVEL_NAMES = ("L1", "L2", "MEM")

#: ALU opcodes accepted in a fast loop's test slot (immediate source).
_FAST_TEST_ALU = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
    }
)


@dataclass(frozen=True)
class FastLoopTest:
    """Recognized test-slot instruction of a fast loop (see Figure 4)."""

    kind: str  # "load" | "store" | "alu" | "imul" | "idiv"
    opcode: Opcode
    dest_name: str | None
    displacement: int
    immediate: int
    is_write: bool


@dataclass(frozen=True)
class FastLoopPlan:
    """Structural constants of one recognized alternation-style loop.

    The plan captures everything the replay engine needs: the loop's pc
    range, the registers it owns, the pointer-update constants, and the
    (optional) test-slot descriptor.  It contains no per-core state, so
    caching it on the :class:`~repro.isa.program.Program` is safe even
    when the same program runs on differently-configured cores.
    """

    head_pc: int
    jnz_pc: int
    ptr_reg: str
    scratch1: str
    scratch2: str
    loop_reg: str
    offset: int
    mask: int
    test: FastLoopTest | None

    @property
    def body_len(self) -> int:
        """Instructions per iteration (pointer update + test + dec/jnz)."""
        return self.jnz_pc - self.head_pc + 1


def _match_fast_test(
    instruction: Instruction, ptr_reg: str, loop_reg: str
) -> FastLoopTest | None:
    """Recognize a test-slot instruction the replay engine can model."""
    opcode = instruction.opcode
    reserved = (ptr_reg, loop_reg)
    if opcode is Opcode.LOAD:
        dest = instruction.dest
        src = instruction.src
        if (
            isinstance(dest, Register)
            and dest.name not in reserved
            and isinstance(src, MemoryOperand)
            and src.base is not None
            and src.base.name == ptr_reg
            and src.index is None
        ):
            return FastLoopTest("load", opcode, dest.name, src.displacement, 0, False)
        return None
    if opcode is Opcode.STORE:
        dest = instruction.dest
        src = instruction.src
        if (
            isinstance(dest, MemoryOperand)
            and dest.base is not None
            and dest.base.name == ptr_reg
            and dest.index is None
            and isinstance(src, Immediate)
        ):
            return FastLoopTest(
                "store", opcode, None, dest.displacement, src.value & WORD_MASK, True
            )
        return None
    if opcode in _FAST_TEST_ALU or opcode is Opcode.IMUL:
        dest = instruction.dest
        if (
            isinstance(dest, Register)
            and dest.name not in reserved
            and isinstance(instruction.src, Immediate)
        ):
            kind = "imul" if opcode is Opcode.IMUL else "alu"
            return FastLoopTest(
                kind, opcode, dest.name, 0, instruction.src.value & WORD_MASK, False
            )
        return None
    if opcode is Opcode.IDIV:
        dest = instruction.dest
        # IDIV only *reads* its destination (the divisor); its writes hit
        # the implicit eax/edx pair, which must not be loop-owned.
        if (
            isinstance(dest, Register)
            and "eax" not in reserved
            and "edx" not in reserved
        ):
            return FastLoopTest("idiv", opcode, dest.name, 0, 0, False)
        return None
    return None


def _match_fast_loop(program: Program, head: int, jnz_pc: int) -> FastLoopPlan | None:
    """Match the Figure 4 loop body between ``head`` and ``jnz_pc``."""
    body = program.instructions[head : jnz_pc + 1]
    if len(body) not in (8, 9):
        return None
    # Nothing may branch into the middle of the body.
    if any(instruction.label is not None for instruction in body[1:]):
        return None

    lea, and1, mov1, and2, or1, mov2 = body[:6]
    if lea.opcode is not Opcode.LEA or not isinstance(lea.dest, Register):
        return None
    src = lea.src
    if not isinstance(src, MemoryOperand) or src.base is None or src.index is not None:
        return None
    scratch1 = lea.dest.name
    ptr_reg = src.base.name
    offset = src.displacement

    if (
        and1.opcode is not Opcode.AND
        or not isinstance(and1.dest, Register)
        or and1.dest.name != scratch1
        or not isinstance(and1.src, Immediate)
    ):
        return None
    mask = and1.src.value & WORD_MASK

    if (
        mov1.opcode is not Opcode.MOV
        or not isinstance(mov1.dest, Register)
        or not isinstance(mov1.src, Register)
        or mov1.src.name != ptr_reg
    ):
        return None
    scratch2 = mov1.dest.name

    if (
        and2.opcode is not Opcode.AND
        or not isinstance(and2.dest, Register)
        or and2.dest.name != scratch2
        or not isinstance(and2.src, Immediate)
        or (and2.src.value & WORD_MASK) != (mask ^ WORD_MASK)
    ):
        return None

    if (
        or1.opcode is not Opcode.OR
        or not isinstance(or1.dest, Register)
        or or1.dest.name != scratch2
        or not isinstance(or1.src, Register)
        or or1.src.name != scratch1
    ):
        return None

    if (
        mov2.opcode is not Opcode.MOV
        or not isinstance(mov2.dest, Register)
        or mov2.dest.name != ptr_reg
        or not isinstance(mov2.src, Register)
        or mov2.src.name != scratch2
    ):
        return None

    if len({ptr_reg, scratch1, scratch2}) != 3:
        return None

    dec = body[-2]
    if dec.opcode is not Opcode.DEC or not isinstance(dec.dest, Register):
        return None
    loop_reg = dec.dest.name
    if loop_reg in (ptr_reg, scratch1, scratch2):
        return None

    test: FastLoopTest | None = None
    if len(body) == 9:
        test = _match_fast_test(body[6], ptr_reg, loop_reg)
        if test is None:
            return None

    return FastLoopPlan(
        head_pc=head,
        jnz_pc=jnz_pc,
        ptr_reg=ptr_reg,
        scratch1=scratch1,
        scratch2=scratch2,
        loop_reg=loop_reg,
        offset=offset,
        mask=mask,
        test=test,
    )


def _analyze_fast_loops(program: Program) -> dict[int, FastLoopPlan]:
    """Find replayable Figure 4 loops in ``program`` (cached per program)."""
    cached = getattr(program, "_fast_loop_plans", None)
    if cached is not None:
        return cached
    plans: dict[int, FastLoopPlan] = {}
    for jnz_pc, instruction in enumerate(program.instructions):
        if instruction.opcode is not Opcode.JNZ:
            continue
        head = program.label_index(instruction.target)  # type: ignore[arg-type]
        if head >= jnz_pc:
            continue
        plan = _match_fast_loop(program, head, jnz_pc)
        if plan is not None:
            plans[plan.head_pc] = plan
    program._fast_loop_plans = plans  # type: ignore[attr-defined]
    return plans


def _batched_test_safe(plan: FastLoopPlan) -> bool:
    """True when the test slot's final register state has a closed form.

    The batched replay applies the pointer-update register effects once
    and the test-slot effects as an independent evolution.  That is only
    valid when the test never reads a register the update rewrites each
    iteration: an ALU/IMUL/IDIV destination aliasing a scratch register
    would be re-seeded by every pointer update, and an IDIV dividend in a
    scratch register likewise.  Loads and stores are always safe — their
    only register write (the load destination) lands after the final
    pointer update on both paths.
    """
    test = plan.test
    if test is None or test.kind in ("load", "store"):
        return True
    scratch = (plan.scratch1, plan.scratch2)
    if test.dest_name in scratch:
        return False
    if test.kind == "idiv" and "eax" in scratch:
        return False
    return True


@dataclass
class ExecutionStats:
    """Counters describing one simulation run."""

    instructions: int = 0
    cycles: int = 0
    opcode_counts: dict[Opcode, int] = field(default_factory=dict)
    level_counts: dict[str, int] = field(default_factory=dict)
    test_instructions: int = 0

    def count_opcode(self, opcode: Opcode) -> None:
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def count_level(self, level: str) -> None:
        self.level_counts[level] = self.level_counts.get(level, 0) + 1


@dataclass
class SimulationResult:
    """Trace plus statistics from one :meth:`Core.run` call."""

    trace: ActivityTrace
    stats: ExecutionStats
    registers: dict[str, int]

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock duration in seconds."""
        return self.trace.duration_s


class Core:
    """An in-order core bound to a cache hierarchy and activity models."""

    def __init__(
        self,
        clock_hz: float,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        latencies: MemoryLatencies | None = None,
        timings: FunctionalUnitTimings | None = None,
        activity: ActivityModel | None = None,
    ) -> None:
        if clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self.timings = timings or FunctionalUnitTimings()
        self.activity = activity or ActivityModel()
        self.hierarchy = MemoryHierarchy(
            l1_geometry, l2_geometry, latencies or MemoryLatencies()
        )
        self.predictor = BranchPredictor()
        self.registers: dict[str, int] = {}
        self.memory: dict[int, int] = {}
        self.zero_flag = False
        #: Lazily-built bare core used to capture activity templates.
        self._shell: Core | None = None
        #: (id(program), head_pc) -> (program, captured loop templates).
        self._loop_template_cache: dict[tuple[int, int], tuple[Program, dict]] = {}
        self.reset()

    def reset(self) -> None:
        """Clear architectural and microarchitectural state."""
        self.registers = {name: 0 for name in _REGISTER_NAMES}
        self.memory = {}
        self.zero_flag = False
        self.hierarchy.reset()
        self.predictor.reset()

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    def _read(self, operand: Operand) -> int:
        if isinstance(operand, Register):
            return self.registers[operand.name]
        if isinstance(operand, Immediate):
            return operand.value & WORD_MASK
        raise SimulationError(f"cannot read operand {operand!r} directly")

    def _write_register(self, operand: Operand | None, value: int) -> None:
        if not isinstance(operand, Register):
            raise SimulationError(f"destination must be a register, got {operand!r}")
        self.registers[operand.name] = value & WORD_MASK

    def effective_address(self, operand: MemoryOperand) -> int:
        """Compute the byte address of a memory operand."""
        address = operand.displacement
        if operand.base is not None:
            address += self.registers[operand.base.name]
        if operand.index is not None:
            address += self.registers[operand.index.name] * operand.scale
        return address & WORD_MASK

    def _set_zero_flag(self, value: int) -> None:
        self.zero_flag = (value & WORD_MASK) == 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        warm_hierarchy: bool = False,
        fast_loops: bool | None = None,
    ) -> SimulationResult:
        """Execute ``program`` until HALT or falling off the end.

        Parameters
        ----------
        program:
            The program to run.
        max_instructions:
            Backstop against runaway loops; exceeding it raises
            :class:`SimulationError`.
        warm_hierarchy:
            If False (default) the cache hierarchy is reset first.  Pass
            True to keep existing cache state — the measurement path
            runs a warm-up pass and then measures in steady state, like
            the paper's free-running alternation loop.
        fast_loops:
            Whether to replay recognized Figure 4 loops through the
            memoizing fast engine (bit-identical results, far fewer
            Python-level steps).  ``None`` (default) follows the global
            :func:`repro.uarch.fastpath.fast_path_enabled` switch.
        """
        if not warm_hierarchy:
            self.hierarchy.reset()
        recorder = ActivityRecorder(self.clock_hz)
        stats = ExecutionStats()
        cycle = 0
        pc = 0
        program_length = len(program)
        if fast_loops is None:
            fast_loops = fast_path_enabled()
        fast_bodies = _analyze_fast_loops(program) if fast_loops else {}

        while pc < program_length:
            if program[pc].opcode is Opcode.HALT:
                break
            if stats.instructions >= max_instructions:
                raise SimulationError(
                    f"program {program.name!r} exceeded {max_instructions} instructions; "
                    "missing halt or runaway loop?"
                )
            if fast_bodies:
                plan = fast_bodies.get(pc)
                if plan is not None and self.registers[plan.loop_reg] >= 1:
                    cycle, pc = self._run_fast_loop(
                        program, plan, cycle, recorder, stats, max_instructions
                    )
                    continue
            duration, pc = self._step_instruction(program, pc, cycle, recorder, stats)
            cycle += duration

        stats.cycles = cycle
        trace = recorder.finish(max(cycle, 1))
        return SimulationResult(trace=trace, stats=stats, registers=dict(self.registers))

    def _step_instruction(
        self,
        program: Program,
        pc: int,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
    ) -> tuple[int, int]:
        """Execute the instruction at ``pc``; return (duration, next pc).

        This is the reference per-instruction step: front-end activity,
        execution semantics, branch prediction, and statistics.  Both the
        plain interpreter loop and the fast-loop engine (when recording a
        template iteration or falling back near ``max_instructions``) go
        through it, so the two paths share one definition of behaviour.
        """
        instruction = program[pc]
        opcode = instruction.opcode
        activity = self.activity

        # Front-end work: identical for every instruction.
        recorder.add(Component.FETCH, cycle, 1, activity.fetch)
        recorder.add(Component.DECODE, cycle, 1, activity.decode)
        recorder.add(Component.REGFILE, cycle, 1, activity.regfile)

        next_pc = pc + 1
        duration = self._execute(instruction, cycle, recorder, stats)
        if instruction.is_branch:
            taken = (
                opcode is Opcode.JMP
                or (opcode is Opcode.JNZ and not self.zero_flag)
                or (opcode is Opcode.JZ and self.zero_flag)
            )
            if taken:
                next_pc = program.label_index(instruction.target)  # type: ignore[arg-type]
            recorder.add(Component.BPRED, cycle, 1, activity.bpred_lookup)
            if opcode is not Opcode.JMP:  # conditional: direction predicted
                mispredicted = self.predictor.record(pc, taken)
                if mispredicted:
                    penalty = self.timings.branch_mispredict_cycles
                    duration += penalty
                    # Flush and refetch: the front end replays work.
                    recorder.add(
                        Component.FETCH,
                        cycle + 1,
                        penalty,
                        activity.flush_refetch / penalty,
                    )
                    recorder.add(
                        Component.DECODE,
                        cycle + 1,
                        penalty,
                        activity.flush_refetch / penalty,
                    )

        stats.instructions += 1
        stats.count_opcode(opcode)
        if instruction.role == "test":
            stats.test_instructions += 1
        return duration, next_pc

    def _run_fast_loop(
        self,
        program: Program,
        plan: FastLoopPlan,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
        max_instructions: int,
    ) -> tuple[int, int]:
        """Replay all iterations of a recognized loop; return (cycle, pc).

        Dispatches to the batched engine — templates captured once on a
        shell core, iteration schedule computed in closed form, activity
        deposited with array operations — whenever the whole loop fits in
        the instruction budget and the test slot's register effects have
        a closed form.  Otherwise the memoizing stepwise engine runs, so
        the ``max_instructions`` backstop still raises at exactly the
        same instruction as the reference interpreter.
        """
        total = self.registers[plan.loop_reg]
        if (
            stats.instructions + total * plan.body_len <= max_instructions
            and _batched_test_safe(plan)
        ):
            return self._run_fast_loop_batched(program, plan, cycle, recorder, stats, total)
        return self._run_fast_loop_stepwise(
            program, plan, cycle, recorder, stats, max_instructions
        )

    def _run_fast_loop_stepwise(
        self,
        program: Program,
        plan: FastLoopPlan,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
        max_instructions: int,
    ) -> tuple[int, int]:
        """Per-iteration loop replay; return (cycle, pc).

        The first occurrence of each distinct iteration behaviour — the
        constant pointer-update prologue, each cache-outcome signature of
        the test slot, each predicted/mispredicted branch epilogue — runs
        through :meth:`_step_instruction` between recorder marks and is
        captured as an :class:`~repro.uarch.activity.ActivityBlock`
        template.  Every later iteration deposits the matching templates
        in bulk and applies the architectural effects in closed form.
        The cache hierarchy is consulted and the branch predictor updated
        exactly once per iteration on both paths, so microarchitectural
        state, statistics, and the recorded event multiset are identical
        to stepping every instruction.
        """
        registers = self.registers
        predictor = self.predictor
        memory = self.memory
        activity = self.activity
        hierarchy = self.hierarchy
        ptr_reg = plan.ptr_reg
        loop_reg = plan.loop_reg
        mask = plan.mask
        inv_mask = mask ^ WORD_MASK
        offset = plan.offset
        test = plan.test
        body_len = plan.body_len
        head_pc = plan.head_pc
        dec_pc = plan.jnz_pc - 1
        jnz_pc = plan.jnz_pc
        exit_pc = jnz_pc + 1

        update_template: tuple | None = None
        test_template: tuple | None = None  # non-memory test slot
        memory_memo: dict[tuple, tuple] = {}  # cache-outcome signature -> template
        branch_memo: dict[bool, tuple] = {}  # mispredicted? -> template

        total = registers[loop_reg]
        for index in range(total):
            if stats.instructions + body_len > max_instructions:
                # Not enough budget for a whole replayed iteration: step
                # the rest of the loop one instruction at a time so the
                # backstop raises at exactly the same instruction as the
                # reference interpreter.
                pc = head_pc
                while True:
                    if stats.instructions >= max_instructions:
                        raise SimulationError(
                            f"program {program.name!r} exceeded {max_instructions} "
                            "instructions; missing halt or runaway loop?"
                        )
                    duration, pc = self._step_instruction(
                        program, pc, cycle, recorder, stats
                    )
                    cycle += duration
                    if pc == exit_pc:
                        return cycle, pc

            # --- Segment 1: the six-instruction pointer update -------
            if update_template is None:
                mark = recorder.mark()
                base = cycle
                pc = head_pc
                while pc < head_pc + 6:
                    duration, pc = self._step_instruction(
                        program, pc, cycle, recorder, stats
                    )
                    cycle += duration
                update_template = (recorder.extract_block(mark, base), cycle - base)
            else:
                block, duration = update_template
                recorder.add_block(block, cycle)
                cycle += duration
                pointer = registers[ptr_reg]
                low = (pointer + offset) & mask
                new_pointer = (pointer & inv_mask) | low
                registers[plan.scratch1] = low
                registers[plan.scratch2] = new_pointer
                registers[ptr_reg] = new_pointer
                stats.instructions += 6
                counts = stats.opcode_counts
                counts[Opcode.LEA] = counts.get(Opcode.LEA, 0) + 1
                counts[Opcode.AND] = counts.get(Opcode.AND, 0) + 2
                counts[Opcode.MOV] = counts.get(Opcode.MOV, 0) + 2
                counts[Opcode.OR] = counts.get(Opcode.OR, 0) + 1

            # --- Segment 2: the test slot ----------------------------
            if test is not None:
                kind = test.kind
                if kind in ("load", "store"):
                    is_write = test.is_write
                    address = (registers[ptr_reg] + test.displacement) & WORD_MASK
                    report = hierarchy.access(address, is_write)
                    signature = (
                        report.level,
                        report.l2_accesses,
                        report.offchip_transfers,
                    )
                    entry = memory_memo.get(signature)
                    if entry is None:
                        mark = recorder.mark()
                        recorder.add(Component.FETCH, cycle, 1, activity.fetch)
                        recorder.add(Component.DECODE, cycle, 1, activity.decode)
                        recorder.add(Component.REGFILE, cycle, 1, activity.regfile)
                        recorder.add(Component.AGU, cycle, 1, activity.agu_op)
                        recorder.add(Component.L1D, cycle, 1, activity.l1_access)
                        if is_write:
                            recorder.add(Component.WB_BUFFER, cycle, 1, activity.wb_buffer)
                        duration = self._memory_access_events(
                            report, cycle, recorder, stats
                        )
                        memory_memo[signature] = (
                            recorder.extract_block(mark, cycle),
                            duration,
                        )
                    else:
                        block, duration = entry
                        recorder.add_block(block, cycle)
                        stats.count_level(report.level)
                    cycle += duration
                    if is_write:
                        memory[address] = test.immediate
                    else:
                        registers[test.dest_name] = memory.get(address, 0)
                    stats.instructions += 1
                    stats.count_opcode(test.opcode)
                    stats.test_instructions += 1
                else:
                    if test_template is None:
                        mark = recorder.mark()
                        duration, _ = self._step_instruction(
                            program, head_pc + 6, cycle, recorder, stats
                        )
                        test_template = (recorder.extract_block(mark, cycle), duration)
                        cycle += duration
                    else:
                        block, duration = test_template
                        recorder.add_block(block, cycle)
                        cycle += duration
                        if kind == "alu":
                            registers[test.dest_name] = self._alu(
                                test.opcode, registers[test.dest_name], test.immediate
                            )
                        elif kind == "imul":
                            registers[test.dest_name] = (
                                registers[test.dest_name] * test.immediate
                            ) & WORD_MASK
                        else:  # idiv
                            divisor = registers[test.dest_name]
                            if divisor == 0:
                                divisor = 1
                            dividend = registers["eax"]
                            registers["eax"] = (dividend // divisor) & WORD_MASK
                            registers["edx"] = (dividend % divisor) & WORD_MASK
                        stats.instructions += 1
                        stats.count_opcode(test.opcode)
                        stats.test_instructions += 1

            # --- Segment 3: dec + jnz --------------------------------
            taken = index != total - 1
            mispredicted = predictor.predict(jnz_pc) != taken
            entry = branch_memo.get(mispredicted)
            if entry is None:
                mark = recorder.mark()
                base = cycle
                duration, _ = self._step_instruction(program, dec_pc, cycle, recorder, stats)
                cycle += duration
                duration, _ = self._step_instruction(program, jnz_pc, cycle, recorder, stats)
                cycle += duration
                branch_memo[mispredicted] = (
                    recorder.extract_block(mark, base),
                    cycle - base,
                )
            else:
                # The predictor is consulted and trained exactly once per
                # iteration on either path; here the template replay
                # supplies the activity and this call supplies the update.
                predictor.record(jnz_pc, taken)
                block, duration = entry
                recorder.add_block(block, cycle)
                cycle += duration
                remaining = (registers[loop_reg] - 1) & WORD_MASK
                registers[loop_reg] = remaining
                self.zero_flag = remaining == 0
                stats.instructions += 2
                counts = stats.opcode_counts
                counts[Opcode.DEC] = counts.get(Opcode.DEC, 0) + 1
                counts[Opcode.JNZ] = counts.get(Opcode.JNZ, 0) + 1

        return cycle, exit_pc

    # ------------------------------------------------------------------
    # Batched fast-loop engine
    # ------------------------------------------------------------------
    def _template_shell(self) -> "Core":
        """A bare core sharing this core's timing/activity models.

        Template capture steps real instructions through
        :meth:`_step_instruction` on this shell so the recorded events
        are exactly those of the reference interpreter, without touching
        the measuring core's architectural or predictor state.  The
        shell has no cache hierarchy — memory instructions are never
        captured through it (their activity comes from
        :meth:`_memory_template`), and any accidental access fails loudly.
        """
        shell = self._shell
        if shell is None:
            shell = object.__new__(Core)
            shell.clock_hz = self.clock_hz
            shell.timings = self.timings
            shell.activity = self.activity
            shell.hierarchy = None  # type: ignore[assignment]
            shell.predictor = BranchPredictor()
            shell.registers = {name: 0 for name in _REGISTER_NAMES}
            shell.memory = {}
            shell.zero_flag = False
            self._shell = shell
        return shell

    def _capture_template(self, program, pcs, setup=None):
        """Step ``pcs`` on the shell core; return (ActivityBlock, duration)."""
        shell = self._template_shell()
        shell.registers = {name: 0 for name in _REGISTER_NAMES}
        shell.zero_flag = False
        shell.predictor = BranchPredictor()
        if setup is not None:
            setup(shell)
        recorder = ActivityRecorder(self.clock_hz)
        scratch = ExecutionStats()
        cycle = 0
        for pc in pcs:
            duration, _ = shell._step_instruction(program, pc, cycle, recorder, scratch)
            cycle += duration
        return recorder.extract_block(0, 0), cycle

    def _loop_templates(self, program: Program, plan: FastLoopPlan) -> dict:
        """Activity templates for one loop, captured once per (program, core)."""
        key = (id(program), plan.head_pc)
        entry = self._loop_template_cache.get(key)
        if entry is not None and entry[0] is program:
            return entry[1]

        head = plan.head_pc
        dec_pc = plan.jnz_pc - 1
        jnz_pc = plan.jnz_pc
        loop_reg = plan.loop_reg

        def branch_setup(counter: int):
            # loop_reg=5 makes DEC leave a non-zero count, so the branch
            # is taken; the counter seeds predicted-taken (3) or
            # predicted-not-taken (0) to select the epilogue variant.
            def setup(shell: Core) -> None:
                shell.registers[loop_reg] = 5
                shell.predictor._counters[jnz_pc] = counter

            return setup

        templates: dict = {
            "update": self._capture_template(program, range(head, head + 6)),
            # Branch activity is direction-independent (only the
            # mispredict flush differs), so one taken-branch capture per
            # variant covers the not-taken final iteration too.
            "branch": {
                False: self._capture_template(program, (dec_pc, jnz_pc), branch_setup(3)),
                True: self._capture_template(program, (dec_pc, jnz_pc), branch_setup(0)),
            },
            "memory": {},
        }
        test = plan.test
        if test is not None and test.kind not in ("load", "store"):
            templates["test"] = self._capture_template(program, (head + 6,))
        self._loop_template_cache[key] = (program, templates)
        return templates

    def _memory_template(
        self, templates: dict, signature: tuple[int, int, int], is_write: bool
    ):
        """Template for one cache-outcome signature of a memory test slot.

        ``signature`` is ``(level_code, l2_accesses, offchip_transfers)``
        as produced by :meth:`MemoryHierarchy.access_stream_reports`.
        The events depend only on the access report, never on cache
        state, so synthesizing the report directly is equivalent to
        capturing a live access with that outcome.
        """
        entry = templates["memory"].get(signature)
        if entry is None:
            level_code, l2_accesses, offchip = signature
            latencies = self.hierarchy.latencies
            report = MemoryAccessReport(
                level=_LEVEL_NAMES[level_code],
                latency_cycles=(
                    latencies.l1_cycles,
                    latencies.l2_cycles,
                    latencies.memory_cycles,
                )[level_code],
                l2_accesses=l2_accesses,
                offchip_transfers=offchip,
            )
            recorder = ActivityRecorder(self.clock_hz)
            activity = self.activity
            recorder.add(Component.FETCH, 0, 1, activity.fetch)
            recorder.add(Component.DECODE, 0, 1, activity.decode)
            recorder.add(Component.REGFILE, 0, 1, activity.regfile)
            recorder.add(Component.AGU, 0, 1, activity.agu_op)
            recorder.add(Component.L1D, 0, 1, activity.l1_access)
            if is_write:
                recorder.add(Component.WB_BUFFER, 0, 1, activity.wb_buffer)
            duration = self._memory_access_events(report, 0, recorder, ExecutionStats())
            entry = (recorder.extract_block(0, 0), duration)
            templates["memory"][signature] = entry
        return entry

    def _run_fast_loop_batched(
        self,
        program: Program,
        plan: FastLoopPlan,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
        total: int,
    ) -> tuple[int, int]:
        """Replay all ``total`` iterations with array operations.

        The iteration schedule is closed-form: pointer lows advance
        arithmetically, the two-bit predictor saturates after at most
        two taken branches, and every iteration's duration is the sum of
        its three segment templates.  Activity lands via
        :meth:`ActivityRecorder.add_block_batch`; since
        :meth:`ActivityRecorder.finish` orders by the event multiset,
        the resulting trace is bit-identical to stepping or to the
        stepwise replay.
        """
        registers = self.registers
        test = plan.test
        templates = self._loop_templates(program, plan)
        update_block, update_duration = templates["update"]

        mask = plan.mask
        inv_mask = mask ^ WORD_MASK
        pointer = registers[plan.ptr_reg]
        high = pointer & inv_mask
        low0 = pointer & mask
        steps = np.arange(1, total + 1, dtype=np.int64)
        lows = (low0 + steps * plan.offset) & mask

        # --- Branch schedule: replicate the two-bit counter exactly ---
        jnz_pc = plan.jnz_pc
        counters = self.predictor._counters
        counter = counters.get(jnz_pc, 1)
        mispredicted = np.zeros(total, dtype=bool)
        miss_count = 0
        index = 0
        while index < total:
            taken = index != total - 1
            if (counter >= 2) != taken:
                mispredicted[index] = True
                miss_count += 1
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
            index += 1
            if counter == 3 and index < total - 1:
                # Saturated on a monotonically-taken run: every branch
                # up to (but excluding) the exit predicts correctly.
                index = total - 1
        counters[jnz_pc] = counter
        predictor_stats = self.predictor.stats
        predictor_stats.predictions += total
        predictor_stats.mispredictions += miss_count

        pred_block, pred_duration = templates["branch"][False]
        misp_block, misp_duration = templates["branch"][True]
        branch_durations = np.where(mispredicted, misp_duration, pred_duration)

        # --- Test-slot outcomes and durations ---------------------------
        addresses = None
        signature_keys = None
        if test is None:
            test_durations: np.ndarray | int = 0
        elif test.kind in ("load", "store"):
            addresses = ((high | lows) + test.displacement) & WORD_MASK
            level, l2_counts, offchip = self.hierarchy.access_stream_reports(
                addresses, test.is_write
            )
            latencies = self.hierarchy.latencies
            test_durations = np.where(
                level == 0,
                1,
                np.where(level == 1, latencies.l2_cycles, latencies.memory_cycles),
            )
            # Compact per-access signature (l2_accesses <= 3, offchip <= 3).
            signature_keys = level * 100 + l2_counts * 10 + offchip
        else:
            test_block, test_duration = templates["test"]
            test_durations = test_duration

        iteration_durations = update_duration + test_durations + branch_durations
        ends = np.cumsum(iteration_durations)
        update_bases = cycle + ends - iteration_durations
        test_bases = update_bases + update_duration
        branch_bases = test_bases + test_durations
        end_cycle = cycle + int(ends[-1])

        # --- Deposit activity -------------------------------------------
        recorder.add_block_batch(update_block, update_bases)
        if test is not None:
            if signature_keys is not None:
                level_counts = stats.level_counts
                for key in np.unique(signature_keys).tolist():
                    selector = signature_keys == key
                    block, _ = self._memory_template(
                        templates, (key // 100, (key // 10) % 10, key % 10), test.is_write
                    )
                    recorder.add_block_batch(block, test_bases[selector])
                    name = _LEVEL_NAMES[key // 100]
                    level_counts[name] = level_counts.get(name, 0) + int(selector.sum())
            else:
                recorder.add_block_batch(test_block, test_bases)
        if miss_count != total:
            recorder.add_block_batch(pred_block, branch_bases[~mispredicted])
        if miss_count:
            recorder.add_block_batch(misp_block, branch_bases[mispredicted])

        # --- Architectural effects --------------------------------------
        final_low = int(lows[-1])
        new_pointer = high | final_low
        registers[plan.scratch1] = final_low
        registers[plan.scratch2] = new_pointer
        registers[plan.ptr_reg] = new_pointer
        registers[plan.loop_reg] = 0
        self.zero_flag = True
        if test is not None:
            kind = test.kind
            if kind == "store":
                immediate = test.immediate
                self.memory.update(
                    (address, immediate) for address in addresses.tolist()
                )
            elif kind == "load":
                registers[test.dest_name] = self.memory.get(int(addresses[-1]), 0)
            elif kind == "alu":
                value = registers[test.dest_name]
                opcode = test.opcode
                immediate = test.immediate
                for _ in range(total):
                    value = self._alu(opcode, value, immediate)
                registers[test.dest_name] = value
            elif kind == "imul":
                value = registers[test.dest_name]
                immediate = test.immediate
                for _ in range(total):
                    value = (value * immediate) & WORD_MASK
                registers[test.dest_name] = value
            else:  # idiv: mirror the per-iteration semantics exactly
                dest = test.dest_name
                for _ in range(total):
                    divisor = registers[dest]
                    if divisor == 0:
                        divisor = 1
                    dividend = registers["eax"]
                    registers["eax"] = (dividend // divisor) & WORD_MASK
                    registers["edx"] = (dividend % divisor) & WORD_MASK

        # --- Statistics --------------------------------------------------
        stats.instructions += total * plan.body_len
        counts = stats.opcode_counts
        counts[Opcode.LEA] = counts.get(Opcode.LEA, 0) + total
        counts[Opcode.AND] = counts.get(Opcode.AND, 0) + 2 * total
        counts[Opcode.MOV] = counts.get(Opcode.MOV, 0) + 2 * total
        counts[Opcode.OR] = counts.get(Opcode.OR, 0) + total
        counts[Opcode.DEC] = counts.get(Opcode.DEC, 0) + total
        counts[Opcode.JNZ] = counts.get(Opcode.JNZ, 0) + total
        if test is not None:
            counts[test.opcode] = counts.get(test.opcode, 0) + total
            stats.test_instructions += total
        return end_cycle, plan.jnz_pc + 1

    def _execute(
        self,
        instruction: Instruction,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
    ) -> int:
        """Apply one instruction's semantics; return its cycle cost."""
        opcode = instruction.opcode
        timings = self.timings
        activity = self.activity

        if opcode is Opcode.NOP:
            return timings.nop_cycles

        if opcode is Opcode.MOV:
            recorder.add(Component.ALU, cycle, 1, activity.mov_op)
            self._write_register(instruction.dest, self._read(instruction.src))
            return timings.mov_cycles

        if opcode in (Opcode.CMOVZ, Opcode.CMOVNZ):
            # Conditional move: identical timing and switching activity
            # whether or not the move commits - the microarchitectural
            # property that makes branchless code constant-signal.
            recorder.add(Component.ALU, cycle, 1, activity.alu_op)
            condition = self.zero_flag if opcode is Opcode.CMOVZ else not self.zero_flag
            if condition:
                self._write_register(instruction.dest, self._read(instruction.src))
            return timings.mov_cycles

        if opcode in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.SHL,
            Opcode.SHR,
        ):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            left = self._read(instruction.dest)
            right = self._read(instruction.src)
            result = self._alu(opcode, left, right)
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.alu_cycles

        if opcode in (Opcode.INC, Opcode.DEC):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            delta = 1 if opcode is Opcode.INC else -1
            result = (self._read(instruction.dest) + delta) & WORD_MASK
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.alu_cycles

        if opcode in (Opcode.CMP, Opcode.TEST):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            left = self._read(instruction.dest)
            right = self._read(instruction.src)
            if opcode is Opcode.CMP:
                self._set_zero_flag((left - right) & WORD_MASK)
            else:
                self._set_zero_flag(left & right)
            return timings.alu_cycles

        if opcode is Opcode.LEA:
            recorder.add(Component.AGU, cycle, timings.lea_cycles, activity.agu_op)
            if not isinstance(instruction.src, MemoryOperand):
                raise SimulationError(f"lea source must be a memory operand: {instruction}")
            self._write_register(instruction.dest, self.effective_address(instruction.src))
            return timings.lea_cycles

        if opcode is Opcode.IMUL:
            recorder.add(Component.MUL, cycle, timings.mul_cycles, activity.mul_per_cycle)
            result = (self._read(instruction.dest) * self._read(instruction.src)) & WORD_MASK
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.mul_cycles

        if opcode is Opcode.IDIV:
            recorder.add(Component.DIV, cycle, timings.div_cycles, activity.div_per_cycle)
            divisor = self._read(instruction.dest)
            if divisor == 0:
                # Architecturally this faults; the measurement kernels
                # guarantee a non-zero divisor, and the demo workloads
                # prefer a defined result over a modeled exception.
                divisor = 1
            dividend = self.registers["eax"]
            self.registers["eax"] = (dividend // divisor) & WORD_MASK
            self.registers["edx"] = (dividend % divisor) & WORD_MASK
            self._set_zero_flag(self.registers["eax"])
            return timings.div_cycles

        if opcode is Opcode.LOAD:
            return self._execute_memory(instruction, cycle, recorder, stats, is_write=False)

        if opcode is Opcode.STORE:
            return self._execute_memory(instruction, cycle, recorder, stats, is_write=True)

        if instruction.is_branch:
            return timings.branch_cycles

        raise SimulationError(f"unimplemented opcode {opcode!r}")

    @staticmethod
    def _alu(opcode: Opcode, left: int, right: int) -> int:
        if opcode is Opcode.ADD:
            return (left + right) & WORD_MASK
        if opcode is Opcode.SUB:
            return (left - right) & WORD_MASK
        if opcode is Opcode.AND:
            return left & right
        if opcode is Opcode.OR:
            return left | right
        if opcode is Opcode.XOR:
            return left ^ right
        if opcode is Opcode.SHL:
            return (left << (right & 31)) & WORD_MASK
        if opcode is Opcode.SHR:
            return (left & WORD_MASK) >> (right & 31)
        raise SimulationError(f"not an ALU opcode: {opcode!r}")

    def _execute_memory(
        self,
        instruction: Instruction,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
        is_write: bool,
    ) -> int:
        activity = self.activity
        operand = instruction.dest if is_write else instruction.src
        if not isinstance(operand, MemoryOperand):
            raise SimulationError(f"memory instruction without memory operand: {instruction}")
        address = self.effective_address(operand)

        recorder.add(Component.AGU, cycle, 1, activity.agu_op)
        recorder.add(Component.L1D, cycle, 1, activity.l1_access)
        if is_write:
            recorder.add(Component.WB_BUFFER, cycle, 1, activity.wb_buffer)

        report = self.hierarchy.access(address, is_write)
        duration = self._memory_access_events(report, cycle, recorder, stats)

        # Architectural data movement.
        if is_write:
            self.memory[address] = self._read(instruction.src) & WORD_MASK
        else:
            self._write_register(instruction.dest, self.memory.get(address, 0))
        return duration

    def _memory_access_events(
        self,
        report,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
    ) -> int:
        """Record the level-dependent activity of one hierarchy access.

        Shared by the reference interpreter (:meth:`_execute_memory`) and
        the fast-loop engine, which captures the emitted events as a
        per-cache-outcome template; everything here depends only on the
        access report, never on the absolute cycle.
        """
        activity = self.activity
        latencies = self.hierarchy.latencies
        stats.count_level(report.level)

        if report.level == "L1":
            return 1  # pipelined L1 hit

        # Fill activity into L1 plus L2 array activity, spread over
        # the L2 access window.
        recorder.add(Component.L1D, cycle, 1, activity.l1_fill)
        l2_window = max(latencies.l2_cycles, 1)
        for access_index in range(report.l2_accesses):
            recorder.add(
                Component.L2,
                cycle + access_index,
                l2_window,
                activity.l2_access / l2_window,
            )
        duration = latencies.l2_cycles
        if report.level == "MEM":
            duration = latencies.memory_cycles
        if report.offchip_transfers:
            bus_window = max(latencies.memory_cycles // 2, 1)
            recorder.add(
                Component.MEM_BUS,
                cycle,
                bus_window,
                report.offchip_transfers * activity.bus_per_transfer / bus_window,
            )
            recorder.add(
                Component.DRAM,
                cycle,
                bus_window,
                report.offchip_transfers * activity.dram_per_transfer / bus_window,
            )
        return duration
