"""Cycle-level in-order core: executes programs and records activity.

The core is a functional-plus-timing interpreter.  It executes the
x86-like subset architecturally (registers, flags, flat memory) while
charging cycles and depositing per-component switching activity
according to the machine's :class:`~repro.uarch.functional_units`
models and the cache hierarchy's access reports.

Modeling choices (documented trade-offs):

* **In-order, blocking.**  The alternation kernels are tight dependent
  loops, so out-of-order overlap would mostly hide L1 latency; we model
  that by charging L1 hits a single effective cycle while charging L2
  and off-chip accesses their full latency.
* **Two-bit branch prediction.**  The kernel's loop branches are
  monotonically taken and predict almost perfectly after warm-up; the
  predictor model exists for the Section VII branch events (BRH/BRM),
  where mispredictions flush the front end with a visible activity
  burst.
* **Write-back buffering.**  Dirty write-backs cost activity (L2/bus/
  DRAM switching) but no demand latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.instructions import (
    Immediate,
    Instruction,
    MemoryOperand,
    Opcode,
    Operand,
    Register,
    WORD_MASK,
)
from repro.isa.program import Program
from repro.uarch.activity import ActivityRecorder, ActivityTrace
from repro.uarch.branch import BranchPredictor
from repro.uarch.cache import CacheGeometry
from repro.uarch.components import Component
from repro.uarch.functional_units import ActivityModel, FunctionalUnitTimings
from repro.uarch.hierarchy import MemoryHierarchy, MemoryLatencies

#: Default cap on executed instructions, as a runaway-loop backstop.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


@dataclass
class ExecutionStats:
    """Counters describing one simulation run."""

    instructions: int = 0
    cycles: int = 0
    opcode_counts: dict[Opcode, int] = field(default_factory=dict)
    level_counts: dict[str, int] = field(default_factory=dict)
    test_instructions: int = 0

    def count_opcode(self, opcode: Opcode) -> None:
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def count_level(self, level: str) -> None:
        self.level_counts[level] = self.level_counts.get(level, 0) + 1


@dataclass
class SimulationResult:
    """Trace plus statistics from one :meth:`Core.run` call."""

    trace: ActivityTrace
    stats: ExecutionStats
    registers: dict[str, int]

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock duration in seconds."""
        return self.trace.duration_s


class Core:
    """An in-order core bound to a cache hierarchy and activity models."""

    def __init__(
        self,
        clock_hz: float,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        latencies: MemoryLatencies | None = None,
        timings: FunctionalUnitTimings | None = None,
        activity: ActivityModel | None = None,
    ) -> None:
        if clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self.timings = timings or FunctionalUnitTimings()
        self.activity = activity or ActivityModel()
        self.hierarchy = MemoryHierarchy(
            l1_geometry, l2_geometry, latencies or MemoryLatencies()
        )
        self.predictor = BranchPredictor()
        self.registers: dict[str, int] = {}
        self.memory: dict[int, int] = {}
        self.zero_flag = False
        self.reset()

    def reset(self) -> None:
        """Clear architectural and microarchitectural state."""
        self.registers = {
            name: 0 for name in ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")
        }
        self.memory = {}
        self.zero_flag = False
        self.hierarchy.reset()
        self.predictor.reset()

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    def _read(self, operand: Operand) -> int:
        if isinstance(operand, Register):
            return self.registers[operand.name]
        if isinstance(operand, Immediate):
            return operand.value & WORD_MASK
        raise SimulationError(f"cannot read operand {operand!r} directly")

    def _write_register(self, operand: Operand | None, value: int) -> None:
        if not isinstance(operand, Register):
            raise SimulationError(f"destination must be a register, got {operand!r}")
        self.registers[operand.name] = value & WORD_MASK

    def effective_address(self, operand: MemoryOperand) -> int:
        """Compute the byte address of a memory operand."""
        address = operand.displacement
        if operand.base is not None:
            address += self.registers[operand.base.name]
        if operand.index is not None:
            address += self.registers[operand.index.name] * operand.scale
        return address & WORD_MASK

    def _set_zero_flag(self, value: int) -> None:
        self.zero_flag = (value & WORD_MASK) == 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        warm_hierarchy: bool = False,
    ) -> SimulationResult:
        """Execute ``program`` until HALT or falling off the end.

        Parameters
        ----------
        program:
            The program to run.
        max_instructions:
            Backstop against runaway loops; exceeding it raises
            :class:`SimulationError`.
        warm_hierarchy:
            If False (default) the cache hierarchy is reset first.  Pass
            True to keep existing cache state — the measurement path
            runs a warm-up pass and then measures in steady state, like
            the paper's free-running alternation loop.
        """
        if not warm_hierarchy:
            self.hierarchy.reset()
        recorder = ActivityRecorder(self.clock_hz)
        stats = ExecutionStats()
        timings = self.timings
        activity = self.activity
        cycle = 0
        pc = 0
        program_length = len(program)

        while pc < program_length:
            instruction = program[pc]
            opcode = instruction.opcode
            if opcode is Opcode.HALT:
                break
            if stats.instructions >= max_instructions:
                raise SimulationError(
                    f"program {program.name!r} exceeded {max_instructions} instructions; "
                    "missing halt or runaway loop?"
                )

            # Front-end work: identical for every instruction.
            recorder.add(Component.FETCH, cycle, 1, activity.fetch)
            recorder.add(Component.DECODE, cycle, 1, activity.decode)
            recorder.add(Component.REGFILE, cycle, 1, activity.regfile)

            next_pc = pc + 1
            duration = self._execute(instruction, cycle, recorder, stats)
            if instruction.is_branch:
                taken = (
                    opcode is Opcode.JMP
                    or (opcode is Opcode.JNZ and not self.zero_flag)
                    or (opcode is Opcode.JZ and self.zero_flag)
                )
                if taken:
                    next_pc = program.label_index(instruction.target)  # type: ignore[arg-type]
                recorder.add(Component.BPRED, cycle, 1, activity.bpred_lookup)
                if opcode is not Opcode.JMP:  # conditional: direction predicted
                    mispredicted = self.predictor.record(pc, taken)
                    if mispredicted:
                        penalty = timings.branch_mispredict_cycles
                        duration += penalty
                        # Flush and refetch: the front end replays work.
                        recorder.add(
                            Component.FETCH,
                            cycle + 1,
                            penalty,
                            activity.flush_refetch / penalty,
                        )
                        recorder.add(
                            Component.DECODE,
                            cycle + 1,
                            penalty,
                            activity.flush_refetch / penalty,
                        )

            stats.instructions += 1
            stats.count_opcode(opcode)
            if instruction.role == "test":
                stats.test_instructions += 1
            cycle += duration
            pc = next_pc

        stats.cycles = cycle
        trace = recorder.finish(max(cycle, 1))
        return SimulationResult(trace=trace, stats=stats, registers=dict(self.registers))

    def _execute(
        self,
        instruction: Instruction,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
    ) -> int:
        """Apply one instruction's semantics; return its cycle cost."""
        opcode = instruction.opcode
        timings = self.timings
        activity = self.activity

        if opcode is Opcode.NOP:
            return timings.nop_cycles

        if opcode is Opcode.MOV:
            recorder.add(Component.ALU, cycle, 1, activity.mov_op)
            self._write_register(instruction.dest, self._read(instruction.src))
            return timings.mov_cycles

        if opcode in (Opcode.CMOVZ, Opcode.CMOVNZ):
            # Conditional move: identical timing and switching activity
            # whether or not the move commits - the microarchitectural
            # property that makes branchless code constant-signal.
            recorder.add(Component.ALU, cycle, 1, activity.alu_op)
            condition = self.zero_flag if opcode is Opcode.CMOVZ else not self.zero_flag
            if condition:
                self._write_register(instruction.dest, self._read(instruction.src))
            return timings.mov_cycles

        if opcode in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.SHL,
            Opcode.SHR,
        ):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            left = self._read(instruction.dest)
            right = self._read(instruction.src)
            result = self._alu(opcode, left, right)
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.alu_cycles

        if opcode in (Opcode.INC, Opcode.DEC):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            delta = 1 if opcode is Opcode.INC else -1
            result = (self._read(instruction.dest) + delta) & WORD_MASK
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.alu_cycles

        if opcode in (Opcode.CMP, Opcode.TEST):
            recorder.add(Component.ALU, cycle, timings.alu_cycles, activity.alu_op)
            left = self._read(instruction.dest)
            right = self._read(instruction.src)
            if opcode is Opcode.CMP:
                self._set_zero_flag((left - right) & WORD_MASK)
            else:
                self._set_zero_flag(left & right)
            return timings.alu_cycles

        if opcode is Opcode.LEA:
            recorder.add(Component.AGU, cycle, timings.lea_cycles, activity.agu_op)
            if not isinstance(instruction.src, MemoryOperand):
                raise SimulationError(f"lea source must be a memory operand: {instruction}")
            self._write_register(instruction.dest, self.effective_address(instruction.src))
            return timings.lea_cycles

        if opcode is Opcode.IMUL:
            recorder.add(Component.MUL, cycle, timings.mul_cycles, activity.mul_per_cycle)
            result = (self._read(instruction.dest) * self._read(instruction.src)) & WORD_MASK
            self._write_register(instruction.dest, result)
            self._set_zero_flag(result)
            return timings.mul_cycles

        if opcode is Opcode.IDIV:
            recorder.add(Component.DIV, cycle, timings.div_cycles, activity.div_per_cycle)
            divisor = self._read(instruction.dest)
            if divisor == 0:
                # Architecturally this faults; the measurement kernels
                # guarantee a non-zero divisor, and the demo workloads
                # prefer a defined result over a modeled exception.
                divisor = 1
            dividend = self.registers["eax"]
            self.registers["eax"] = (dividend // divisor) & WORD_MASK
            self.registers["edx"] = (dividend % divisor) & WORD_MASK
            self._set_zero_flag(self.registers["eax"])
            return timings.div_cycles

        if opcode is Opcode.LOAD:
            return self._execute_memory(instruction, cycle, recorder, stats, is_write=False)

        if opcode is Opcode.STORE:
            return self._execute_memory(instruction, cycle, recorder, stats, is_write=True)

        if instruction.is_branch:
            return timings.branch_cycles

        raise SimulationError(f"unimplemented opcode {opcode!r}")

    @staticmethod
    def _alu(opcode: Opcode, left: int, right: int) -> int:
        if opcode is Opcode.ADD:
            return (left + right) & WORD_MASK
        if opcode is Opcode.SUB:
            return (left - right) & WORD_MASK
        if opcode is Opcode.AND:
            return left & right
        if opcode is Opcode.OR:
            return left | right
        if opcode is Opcode.XOR:
            return left ^ right
        if opcode is Opcode.SHL:
            return (left << (right & 31)) & WORD_MASK
        if opcode is Opcode.SHR:
            return (left & WORD_MASK) >> (right & 31)
        raise SimulationError(f"not an ALU opcode: {opcode!r}")

    def _execute_memory(
        self,
        instruction: Instruction,
        cycle: int,
        recorder: ActivityRecorder,
        stats: ExecutionStats,
        is_write: bool,
    ) -> int:
        activity = self.activity
        latencies = self.hierarchy.latencies
        operand = instruction.dest if is_write else instruction.src
        if not isinstance(operand, MemoryOperand):
            raise SimulationError(f"memory instruction without memory operand: {instruction}")
        address = self.effective_address(operand)

        recorder.add(Component.AGU, cycle, 1, activity.agu_op)
        recorder.add(Component.L1D, cycle, 1, activity.l1_access)
        if is_write:
            recorder.add(Component.WB_BUFFER, cycle, 1, activity.wb_buffer)

        report = self.hierarchy.access(address, is_write)
        stats.count_level(report.level)

        if report.level == "L1":
            duration = 1  # pipelined L1 hit
        else:
            # Fill activity into L1 plus L2 array activity, spread over
            # the L2 access window.
            recorder.add(Component.L1D, cycle, 1, activity.l1_fill)
            l2_window = max(latencies.l2_cycles, 1)
            for access_index in range(report.l2_accesses):
                recorder.add(
                    Component.L2,
                    cycle + access_index,
                    l2_window,
                    activity.l2_access / l2_window,
                )
            duration = latencies.l2_cycles
            if report.level == "MEM":
                duration = latencies.memory_cycles
            if report.offchip_transfers:
                bus_window = max(latencies.memory_cycles // 2, 1)
                recorder.add(
                    Component.MEM_BUS,
                    cycle,
                    bus_window,
                    report.offchip_transfers * activity.bus_per_transfer / bus_window,
                )
                recorder.add(
                    Component.DRAM,
                    cycle,
                    bus_window,
                    report.offchip_transfers * activity.dram_per_transfer / bus_window,
                )

        # Architectural data movement.
        if is_write:
            self.memory[address] = self._read(instruction.src) & WORD_MASK
        else:
            self._write_register(instruction.dest, self.memory.get(address, 0))
        return duration
