"""Branchless (constant-time) rewriting — the software mitigation.

Compensation (:mod:`repro.mitigations.compensation`) balances two paths;
the stronger fix is to have *one* path: always execute both the square
and the multiply, and commit the right result with a conditional move.
``cmov`` retires in the same cycle with the same ALU activity whether or
not it moves, so the instruction stream — and therefore the side-channel
signal SAVAT measures — is independent of the key bit.

This module builds the constant-time variant of the
:mod:`repro.attacks.modexp` victim and quantifies the mitigation:

* :func:`bit_level_separation` — how far apart the average 1-bit and
  0-bit signatures sit in the attacker's signal space (the quantity the
  template attack thresholds);
* :func:`evaluate_branchless` — separation and run time for the leaky
  and constant-time victims side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.modexp import (
    DEFAULT_BLOCK_WORK,
    TABLE_BASE,
    VictimExecution,
    multiply_block_program,
    square_block_program,
)
from repro.errors import ConfigurationError
from repro.isa.instructions import Instruction, Opcode, imm, reg
from repro.isa.program import Program
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.activity import ActivityTrace


def constant_time_step_program(block_work: int = DEFAULT_BLOCK_WORK) -> Program:
    """One constant-time square-and-multiply step.

    Executes the square block *and* the multiply block unconditionally,
    then selects which product survives with conditional moves keyed on
    the bit (held in ``ebx``).  The instruction stream is identical for
    both bit values; only the ``cmov`` data differs.
    """
    instructions: list[Instruction] = []
    # Squared result accumulates in edx (square_block_program's output);
    # stash it before the multiply block overwrites the accumulator.
    instructions.extend(square_block_program(block_work).instructions)
    instructions.append(Instruction(Opcode.MOV, dest=reg("edi"), src=reg("edx")))
    instructions.extend(multiply_block_program(block_work).instructions)
    # edx now holds square*multiplier; edi holds square-only.
    # Select: bit==1 keeps edx, bit==0 restores edi — via cmov, not a branch.
    instructions.append(Instruction(Opcode.TEST, dest=reg("ebx"), src=imm(1)))
    instructions.append(Instruction(Opcode.CMOVZ, dest=reg("edx"), src=reg("edi")))
    return Program(instructions, name="constant-time step")


def simulate_constant_time_victim(
    machine: CalibratedMachine,
    key_bits: list[int] | tuple[int, ...],
    block_work: int = DEFAULT_BLOCK_WORK,
) -> VictimExecution:
    """Run the constant-time victim; one identical block per key bit."""
    if not key_bits:
        raise ConfigurationError("key must have at least one bit")
    if any(bit not in (0, 1) for bit in key_bits):
        raise ConfigurationError(f"key bits must be 0/1, got {key_bits!r}")
    core = machine.make_core()
    core.registers["edx"] = 1
    core.registers["esi"] = TABLE_BASE
    step = constant_time_step_program(block_work)

    pieces: list[np.ndarray] = []
    boundaries: list[tuple[int, int, str]] = []
    cursor = 0
    for bit in key_bits:
        core.registers["ebx"] = bit
        result = core.run(step, warm_hierarchy=True)
        pieces.append(result.trace.data)
        boundaries.append((cursor, cursor + result.cycles, "ct_step"))
        cursor += result.cycles

    trace = ActivityTrace(np.concatenate(pieces, axis=1), machine.spec.clock_hz)
    return VictimExecution(
        key_bits=tuple(key_bits),
        trace=trace,
        block_boundaries=tuple(boundaries),
    )


def _bit_spans(execution: VictimExecution) -> list[tuple[int, int]]:
    """Cycle span owned by each key bit.

    In the leaky victim a 1-bit owns its square *and* multiply blocks;
    in the constant-time victim every bit owns exactly one step block.
    """
    spans: list[tuple[int, int]] = []
    boundary_iter = iter(execution.block_boundaries)
    for _bit in execution.key_bits:
        start, end, kind = next(boundary_iter)
        if kind == "square":
            # Peek: a multiply block following a square belongs to a 1-bit.
            remaining = list(boundary_iter)
            if remaining and remaining[0][2] == "multiply":
                end = remaining[0][1]
                remaining = remaining[1:]
            boundary_iter = iter(remaining)
        spans.append((start, end))
    return spans


def bit_level_separation(
    machine: CalibratedMachine, execution: VictimExecution
) -> float:
    """Distance between the average 1-bit and 0-bit signatures.

    Each bit's feature vector is its span's per-mode mean signal level
    plus its duration (timing leaks count too!); the separation is the
    Euclidean distance between the class means, with duration expressed
    as a fractional deviation so it shares the levels' scale.

    Returns 0.0 if the key contains only one bit value.
    """
    waveform = machine.coupling.project_trace(execution.trace)
    spans = _bit_spans(execution)
    mean_duration = float(np.mean([end - start for start, end in spans]))
    level_scale = float(np.abs(waveform).mean()) or 1.0
    features: dict[int, list[np.ndarray]] = {0: [], 1: []}
    for bit, (start, end) in zip(execution.key_bits, spans):
        level = waveform[:, start:end].mean(axis=1) / level_scale
        duration = (end - start) / mean_duration - 1.0
        features[bit].append(np.concatenate([level, [duration]]))
    if not features[0] or not features[1]:
        return 0.0
    mean_zero = np.mean(features[0], axis=0)
    mean_one = np.mean(features[1], axis=0)
    return float(np.linalg.norm(mean_one - mean_zero))


@dataclass
class BranchlessReport:
    """Leaky vs constant-time victim comparison."""

    key_bits: tuple[int, ...]
    leaky_separation: float
    constant_time_separation: float
    leaky_cycles: int
    constant_time_cycles: int

    @property
    def separation_reduction(self) -> float:
        """Factor by which the rewrite shrinks the bit signature."""
        if self.constant_time_separation <= 0:
            return float("inf")
        return self.leaky_separation / self.constant_time_separation

    @property
    def time_overhead(self) -> float:
        """Execution-time cost of always doing both blocks."""
        return self.constant_time_cycles / self.leaky_cycles - 1.0

    def __str__(self) -> str:
        return (
            f"branchless rewrite: bit separation {self.leaky_separation:.3g} -> "
            f"{self.constant_time_separation:.3g} "
            f"({self.separation_reduction:.0f}x smaller) at "
            f"{self.time_overhead:+.0%} execution time"
        )


def evaluate_branchless(
    machine: CalibratedMachine,
    key_bits: list[int] | tuple[int, ...],
    block_work: int = DEFAULT_BLOCK_WORK,
) -> BranchlessReport:
    """Measure the constant-time rewrite's benefit and cost."""
    from repro.attacks.modexp import simulate_victim

    leaky = simulate_victim(machine, key_bits, block_work)
    constant_time = simulate_constant_time_victim(machine, key_bits, block_work)
    return BranchlessReport(
        key_bits=tuple(key_bits),
        leaky_separation=bit_level_separation(machine, leaky),
        constant_time_separation=bit_level_separation(machine, constant_time),
        leaky_cycles=leaky.trace.num_cycles,
        constant_time_cycles=constant_time.trace.num_cycles,
    )
