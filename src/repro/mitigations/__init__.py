"""Side-channel mitigations and their SAVAT-measured cost/benefit."""

from repro.mitigations.branchless import (
    BranchlessReport,
    bit_level_separation,
    constant_time_step_program,
    evaluate_branchless,
    simulate_constant_time_victim,
)
from repro.mitigations.compensation import (
    CompensationReport,
    compensate_sequences,
    evaluate_compensation,
)

__all__ = [
    "BranchlessReport",
    "CompensationReport",
    "bit_level_separation",
    "constant_time_step_program",
    "evaluate_branchless",
    "simulate_constant_time_victim",
    "compensate_sequences",
    "evaluate_compensation",
]
