"""Compensating-activity mitigation and its cost/benefit evaluation.

Section II describes the classic circuit/software countermeasure:
"when actual inputs require little activity, additional unnecessary
activity is performed to match what happens for high-activity values",
at the cost of "execution times that always match the worst case".
SAVAT's whole purpose is to let designers apply such expensive
mitigations *selectively* — only where the signal actually is.

This module implements the software variant at sequence granularity:
:func:`compensate_sequences` pads each of two data-dependent code paths
with the other's excess events (dummy work), and
:func:`evaluate_compensation` measures the SAVAT before and after plus
the execution-time overhead, producing exactly the numbers a designer
would weigh.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.sequences import measure_sequence_savat
from repro.errors import ConfigurationError
from repro.isa.events import get_event
from repro.machines.calibrated import CalibratedMachine


def compensate_sequences(
    sequence_a: Sequence[str],
    sequence_b: Sequence[str],
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Pad both sequences to the same event multiset.

    Each side gains dummy copies of the events the *other* side has in
    excess, so after compensation both paths execute the same bag of
    instructions (order differs, which first-order activity models —
    and, per the paper's Section V data, real EM measurements of
    same-instruction pairs — barely distinguish).

    Raises
    ------
    ConfigurationError
        If either sequence is empty or names an unknown event.
    """
    if not sequence_a or not sequence_b:
        raise ConfigurationError("both sequences must be non-empty")
    names_a = [get_event(name).name for name in sequence_a]
    names_b = [get_event(name).name for name in sequence_b]
    counts_a = Counter(names_a)
    counts_b = Counter(names_b)
    padded_a = list(names_a)
    padded_b = list(names_b)
    for event, count in sorted((counts_b - counts_a).items()):
        padded_a.extend([event] * count)
    for event, count in sorted((counts_a - counts_b).items()):
        padded_b.extend([event] * count)
    return tuple(padded_a), tuple(padded_b)


@dataclass
class CompensationReport:
    """Cost/benefit of compensating one data-dependent path pair."""

    sequence_a: tuple[str, ...]
    sequence_b: tuple[str, ...]
    compensated_a: tuple[str, ...]
    compensated_b: tuple[str, ...]
    savat_before_zj: float
    savat_after_zj: float
    pairs_per_second_before: float
    pairs_per_second_after: float

    @property
    def savat_reduction(self) -> float:
        """Factor by which the mitigation shrinks the signal."""
        if self.savat_after_zj <= 0:
            return float("inf")
        return self.savat_before_zj / self.savat_after_zj

    @property
    def time_overhead(self) -> float:
        """Relative execution-time cost of the dummy work.

        The alternation kernel's pair rate is inversely proportional to
        the paths' combined duration, so the overhead is the rate ratio
        minus one (0.0 = free, 1.0 = everything takes twice as long).
        """
        if self.pairs_per_second_after <= 0:
            return float("inf")
        return self.pairs_per_second_before / self.pairs_per_second_after - 1.0

    def __str__(self) -> str:
        return (
            f"compensation: SAVAT {self.savat_before_zj:.2f} -> "
            f"{self.savat_after_zj:.2f} zJ ({self.savat_reduction:.0f}x quieter) "
            f"at +{self.time_overhead:.0%} execution time"
        )


def evaluate_compensation(
    machine: CalibratedMachine,
    sequence_a: Sequence[str],
    sequence_b: Sequence[str],
    rng: np.random.Generator | None = None,
) -> CompensationReport:
    """Measure a path pair's SAVAT before and after compensation.

    Both measurements run through the full pipeline (sequence-slot
    alternation kernels), so the report reflects what an attacker's
    spectrum analyzer would actually see.
    """
    padded_a, padded_b = compensate_sequences(sequence_a, sequence_b)
    before = measure_sequence_savat(machine, sequence_a, sequence_b, rng=rng)
    after = measure_sequence_savat(machine, padded_a, padded_b, rng=rng)
    return CompensationReport(
        sequence_a=before.sequence_a,
        sequence_b=before.sequence_b,
        compensated_a=padded_a,
        compensated_b=padded_b,
        savat_before_zj=before.measured_zj,
        savat_after_zj=after.measured_zj,
        pairs_per_second_before=before.pairs_per_second,
        pairs_per_second_after=after.pairs_per_second,
    )
