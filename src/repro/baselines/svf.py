"""Side-channel Vulnerability Factor (SVF) — the prior-art baseline.

SVF (Demme et al., ISCA 2012) is the metric the paper positions itself
against (Sections I and VI): it measures how strongly a side-channel
signal *correlates with high-level execution patterns* (program phases),
giving a whole-system leakiness number but "limited insight ... about
which architectural and microarchitectural features are the strongest
leakers".

This simplified implementation follows the published recipe:

1. slice the victim's ground-truth activity and the attacker's observed
   signal into aligned windows;
2. build the two pairwise *similarity matrices* (one from the oracle
   windows, one from the signal windows);
3. SVF is the Pearson correlation between corresponding entries.

The contrast experiment (``examples/svf_vs_savat.py``) computes SVF for
a modular-exponentiation victim and shows that, unlike SAVAT, the single
number cannot say *which* instruction pair leaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def window_features(series: np.ndarray, num_windows: int) -> np.ndarray:
    """Split a 1-D (or ``(channels, T)``) series into window features.

    Each window's feature vector is the per-channel mean activity; the
    trailing remainder is dropped.  Returns ``(num_windows, channels)``.
    """
    series = np.atleast_2d(np.asarray(series, dtype=np.float64))
    channels, length = series.shape
    if num_windows < 2:
        raise ConfigurationError(f"need >= 2 windows, got {num_windows}")
    if length < num_windows:
        raise ConfigurationError(
            f"series of length {length} cannot form {num_windows} windows"
        )
    window = length // num_windows
    usable = window * num_windows
    blocks = series[:, :usable].reshape(channels, num_windows, window)
    return blocks.mean(axis=2).T


def similarity_matrix(features: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean-distance matrix between window features.

    Demme et al. use distances between windows as the "pattern"; any
    monotone transform works since SVF is a correlation.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ConfigurationError(f"features must be 2-D, got shape {features.shape}")
    deltas = features[:, np.newaxis, :] - features[np.newaxis, :, :]
    return np.sqrt((deltas**2).sum(axis=2))


@dataclass
class SvfResult:
    """SVF plus the intermediate matrices, for inspection."""

    svf: float
    oracle_similarity: np.ndarray
    signal_similarity: np.ndarray
    num_windows: int


def compute_svf(
    oracle_series: np.ndarray,
    signal_series: np.ndarray,
    num_windows: int = 64,
) -> SvfResult:
    """Side-channel Vulnerability Factor between oracle and observation.

    Parameters
    ----------
    oracle_series:
        Ground-truth execution pattern over time (e.g. the victim's
        per-cycle activity, or a phase indicator series).
    signal_series:
        What the attacker records (e.g. the synthesized antenna signal).
        May have a different length; both are reduced to ``num_windows``
        aligned windows.
    num_windows:
        Number of phase windows.

    Returns
    -------
    SvfResult
        ``svf`` in [-1, 1]; 1 means the signal's phase structure mirrors
        the execution's phase structure perfectly.
    """
    oracle = window_features(oracle_series, num_windows)
    signal = window_features(signal_series, num_windows)
    oracle_sim = similarity_matrix(oracle)
    signal_sim = similarity_matrix(signal)
    upper = np.triu_indices(num_windows, 1)
    oracle_flat = oracle_sim[upper]
    signal_flat = signal_sim[upper]
    if oracle_flat.std() == 0 or signal_flat.std() == 0:
        svf = 0.0
    else:
        svf = float(np.corrcoef(oracle_flat, signal_flat)[0, 1])
    return SvfResult(
        svf=svf,
        oracle_similarity=oracle_sim,
        signal_similarity=signal_sim,
        num_windows=num_windows,
    )
