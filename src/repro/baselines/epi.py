"""Energy-per-instruction (EPI) — the other prior-art baseline.

Section VI: "Previous research has developed methods for measuring
energy per instruction (for example [Bertran et al., MICRO 2012]),
however ... Whereas previous work measures the energy expended per
instruction, the metric discussed in this paper measures only the energy
that can be received and exploited by an attacker through a given side
channel."

This module measures EPI the Bertran way — steady-state
micro-benchmarks, total power divided by instruction rate — on the same
simulated machines, so the two metrics can be compared head to head:
the EPI ranking (how much energy an instruction *burns*) and the SAVAT
ranking (how much signal it *hands the attacker*) genuinely disagree,
which is the paper's argument for needing a new metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.power import POWER_WEIGHTS
from repro.codegen.alternation import POINTER_REGISTER_A, build_probe_program
from repro.codegen.frequency import plan_sweep_for_core
from repro.codegen.pointers import prime_for_sweep
from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER, InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.components import COMPONENT_INDEX

#: Joules per abstract activity unit at weight 1.0 — a plausible scale
#: for mid-2000s cores (puts an ADD near 50 pJ); only ratios matter for
#: the EPI-vs-SAVAT comparison.
ENERGY_PER_ACTIVITY_UNIT_J = 6e-11

#: Iterations per EPI micro-benchmark run.
EPI_ITERATIONS = 128


@dataclass
class EpiResult:
    """Energy-per-instruction measurement for one event."""

    event: str
    energy_j: float
    cycles_per_instruction: float

    @property
    def energy_pj(self) -> float:
        """Energy in picojoules (the unit EPI papers use)."""
        return self.energy_j * 1e12


def measure_energy_per_instruction(
    machine: CalibratedMachine,
    event: InstructionEvent | str,
) -> EpiResult:
    """Steady-state EPI micro-benchmark for one event.

    Runs the event's loop in cache steady state, converts the activity
    trace to switching energy via the per-component power weights, and
    subtracts the loop-overhead energy measured with the NOI kernel —
    the same "empty benchmark" correction automated EPI frameworks use.
    """
    if isinstance(event, str):
        event = get_event(event)

    def _loop_energy_and_cycles(target: InstructionEvent) -> tuple[float, float]:
        core = machine.make_core()
        plan = plan_sweep_for_core(core, target)
        program = build_probe_program(target, EPI_ITERATIONS, plan)
        prime_for_sweep(core.hierarchy, plan, is_write=target.is_store)
        core.registers[POINTER_REGISTER_A] = plan.base
        core.registers["eax"] = 173
        result = core.run(program, warm_hierarchy=True)
        weights = np.zeros(len(COMPONENT_INDEX))
        for component, value in POWER_WEIGHTS.items():
            weights[COMPONENT_INDEX[component]] = value
        activity = float(weights @ result.trace.data.sum(axis=1))
        return activity * ENERGY_PER_ACTIVITY_UNIT_J, result.cycles / EPI_ITERATIONS

    total_energy, cycles = _loop_energy_and_cycles(event)
    overhead_energy, _noi_cycles = _loop_energy_and_cycles(get_event("NOI"))
    per_instruction = max(total_energy - overhead_energy, 0.0) / EPI_ITERATIONS
    return EpiResult(
        event=event.name,
        energy_j=per_instruction,
        cycles_per_instruction=cycles,
    )


def epi_table(machine: CalibratedMachine) -> dict[str, EpiResult]:
    """EPI for every Figure-5 event except NOI (the null benchmark)."""
    return {
        name: measure_energy_per_instruction(machine, name)
        for name in EVENT_ORDER
        if name != "NOI"
    }


def ranking_disagreement(
    epi_values: dict[str, float], savat_values: dict[str, float]
) -> dict[str, float]:
    """Quantify how differently EPI and SAVAT rank the same events.

    Returns Spearman correlation plus the largest per-event rank gap —
    the paper's point is made when the correlation is visibly imperfect
    and some event (historically DIV or an L2 access) sits high in one
    ranking and low in the other.
    """
    from scipy import stats

    common = sorted(set(epi_values) & set(savat_values))
    if len(common) < 3:
        raise ConfigurationError("need >= 3 common events to compare rankings")
    epi_ordered = [epi_values[name] for name in common]
    savat_ordered = [savat_values[name] for name in common]
    spearman = float(stats.spearmanr(epi_ordered, savat_ordered).statistic)
    epi_ranks = {name: rank for rank, name in enumerate(sorted(common, key=epi_values.get))}
    savat_ranks = {
        name: rank for rank, name in enumerate(sorted(common, key=savat_values.get))
    }
    gaps = {name: abs(epi_ranks[name] - savat_ranks[name]) for name in common}
    worst = max(gaps, key=gaps.get)
    return {
        "spearman": spearman,
        "max_rank_gap": float(gaps[worst]),
        "max_rank_gap_event": worst,  # type: ignore[dict-item]
    }
