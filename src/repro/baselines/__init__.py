"""Baseline metrics from prior work (Section VI comparisons)."""

from repro.baselines.epi import (
    EpiResult,
    epi_table,
    measure_energy_per_instruction,
    ranking_disagreement,
)
from repro.baselines.svf import SvfResult, compute_svf, similarity_matrix, window_features

__all__ = [
    "EpiResult",
    "SvfResult",
    "compute_svf",
    "epi_table",
    "measure_energy_per_instruction",
    "ranking_disagreement",
    "similarity_matrix",
    "window_features",
]
