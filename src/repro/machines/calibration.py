"""Calibrating the EM coupling model against the paper's matrices.

The forward measurement pipeline is, end to end,

    program -> cycle simulation -> activity trace -> couplings ->
    antenna waveform -> spectrum analyzer -> band power -> zJ,

and everything in it except the coupling weights is determined by the
machine spec and the methodology.  Calibration fits those weights (plus
a small per-event "self-noise" term) so the forward pipeline reproduces
a published reference matrix.  Crucially, the fit is expressed in terms
of *simulated per-event activity profiles*: the couplings weight real
microarchitectural activity, so perturbing a program or machine
parameter produces honest downstream changes rather than a table
lookup.

The math
--------
For an alternation of events A and B with per-iteration costs
``cpi_A``/``cpi_B`` (cycles) and per-cycle activity-rate vectors
``rho_A``/``rho_B``, the received waveform is (to first order) a
two-level square wave with per-mode levels ``W @ rho``.  Its fundamental
band power divided by the pair rate gives

    SAVAT(A, B) = G_AB * sum_m (W[m] . (rho_A - rho_B))^2 + s_A + s_B

where ``G_AB = 2 sin^2(pi d_AB) (cpi_A + cpi_B) / (pi^2 R f_clk)`` with
duty ``d_AB = cpi_A / (cpi_A + cpi_B)``, and ``s_X`` is event X's
self-noise: the residual alternation-frequency energy produced even in
an X/X measurement by imperfect matching of the two halves (different
sweep arrays, hence different address bits on the buses).  The paper's
A/A diagonal *is* this term, so ``s_X = D_XX / 2``.

Fitting is then: (1) turn the reference matrix into squared distances
``Q_AB = (D_AB - s_A - s_B) / G_AB``; (2) classically MDS-embed ``Q``
into ``num_modes`` dimensions, giving per-event points ``p_X``; and (3)
solve the linear least-squares problem ``W @ rho_X ~ p_X`` (both sides
centered — only differences are observable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError
from repro.isa.events import EVENT_ORDER, PAPER_EVENTS, get_event
from repro.codegen.frequency import measure_cycles_per_iteration, plan_sweep_for_core
from repro.codegen.alternation import POINTER_REGISTER_A, build_probe_program
from repro.codegen.pointers import prime_for_sweep
from repro.em.coupling import CouplingMatrix, DEFAULT_NUM_MODES
from repro.machines.reference_data import ReferenceMatrix
from repro.machines.specs import MachineSpec
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE

#: Iterations used by the calibration probes (steady state is reached
#: within a handful of iterations once the hierarchy is primed).
CALIBRATION_PROBE_ITERATIONS = 64


@dataclass(frozen=True)
class EventProfile:
    """Simulated steady-state behaviour of one event's loop half."""

    name: str
    cycles_per_iteration: float
    activity_rates: np.ndarray  # per-cycle activity, length NUM_COMPONENTS


@dataclass
class CalibrationResult:
    """Fitted EM model for one (machine, distance) pair.

    Attributes
    ----------
    coupling:
        Fitted per-mode component couplings (V per activity unit).
    self_noise_j:
        Per-event self-noise energy (J per A/A pair), from the
        reference diagonal.
    profiles:
        Per-event simulated profiles used in the fit.
    points:
        The MDS embedding (events x modes), for diagnostics.
    fitted_points:
        ``W @ rho`` for each event — how well the activity model can
        express the embedding.
    reference:
        The reference matrix that was fitted.
    stress:
        Relative embedding stress: fraction of the (geometry-weighted)
        squared-distance mass the ``num_modes``-dimensional embedding
        could not represent.  0 is perfect.
    clock_hz:
        Clock the geometry factors were computed against.
    """

    coupling: CouplingMatrix
    self_noise_j: dict[str, float]
    profiles: dict[str, EventProfile]
    points: np.ndarray
    fitted_points: np.ndarray
    reference: ReferenceMatrix
    stress: float
    clock_hz: float

    def geometry_factor(self, event_a: str, event_b: str) -> float:
        """``G_AB`` (J per squared volt) for a pair of events."""
        profile_a = self.profiles[event_a.upper()]
        profile_b = self.profiles[event_b.upper()]
        return pair_geometry_factor(
            profile_a.cycles_per_iteration,
            profile_b.cycles_per_iteration,
            self.clock_hz,
        )

    def predicted_matrix_zj(self) -> np.ndarray:
        """The matrix the *analytic* forward model predicts, in zJ.

        Useful for diagnostics; the full pipeline (cycle simulation +
        spectrum analyzer) should land close to this.
        """
        names = EVENT_ORDER
        count = len(names)
        predicted = np.zeros((count, count))
        for i, name_a in enumerate(names):
            for j, name_b in enumerate(names):
                delta = self.fitted_points[i] - self.fitted_points[j]
                geometry = self.geometry_factor(name_a, name_b)
                predicted[i, j] = (
                    geometry * float(delta @ delta)
                    + self.self_noise_j[name_a]
                    + self.self_noise_j[name_b]
                ) / ZEPTOJOULE
        return predicted


def pair_geometry_factor(
    cpi_a: float,
    cpi_b: float,
    clock_hz: float,
    impedance: float = REFERENCE_IMPEDANCE,
) -> float:
    """``G_AB`` — J of per-pair energy per squared volt of level difference.

    Derivation: the alternation waveform is a two-level square wave with
    duty ``d = cpi_a/(cpi_a+cpi_b)``; its fundamental Fourier magnitude
    is ``|dL| sin(pi d)/pi``; band power across R is twice the squared
    magnitude over R; dividing by the pair rate ``f_clk / (cpi_a+cpi_b)``
    yields G.
    """
    if cpi_a <= 0 or cpi_b <= 0 or clock_hz <= 0:
        raise CalibrationError("cpi values and clock must be positive")
    duty = cpi_a / (cpi_a + cpi_b)
    return (
        2.0
        * math.sin(math.pi * duty) ** 2
        * (cpi_a + cpi_b)
        / (math.pi**2 * impedance * clock_hz)
    )


def profile_event(spec: MachineSpec, event_name: str) -> EventProfile:
    """Simulate one event's loop half and extract its steady-state profile."""
    event = get_event(event_name)
    core = spec.make_core()
    cpi = measure_cycles_per_iteration(core, event, CALIBRATION_PROBE_ITERATIONS)
    # Re-run to collect the activity-rate vector from a clean, primed run.
    plan = plan_sweep_for_core(core, event)
    program = build_probe_program(event, CALIBRATION_PROBE_ITERATIONS, plan)
    prime_for_sweep(core.hierarchy, plan, is_write=event.is_store)
    core.registers[POINTER_REGISTER_A] = plan.base
    core.registers["eax"] = 173
    result = core.run(program, warm_hierarchy=True)
    return EventProfile(
        name=event.name,
        cycles_per_iteration=cpi,
        activity_rates=result.trace.mean_rates(),
    )


def profile_all_events(spec: MachineSpec) -> dict[str, EventProfile]:
    """Profiles for all eleven paper events on ``spec``."""
    return {event.name: profile_event(spec, event.name) for event in PAPER_EVENTS}


def classical_mds(squared_distances: np.ndarray, num_dims: int) -> tuple[np.ndarray, float]:
    """Classical multidimensional scaling.

    Parameters
    ----------
    squared_distances:
        Symmetric matrix of squared distances with a zero diagonal.
    num_dims:
        Embedding dimensionality.

    Returns
    -------
    (points, stress):
        ``points`` has shape ``(n, num_dims)``; ``stress`` is the
        fraction of total eigenvalue mass not captured by the retained
        non-negative eigenvalues (0 = exact Euclidean embedding).
    """
    squared = np.asarray(squared_distances, dtype=np.float64)
    if squared.ndim != 2 or squared.shape[0] != squared.shape[1]:
        raise CalibrationError(f"squared-distance matrix must be square, got {squared.shape}")
    count = squared.shape[0]
    if num_dims < 1 or num_dims >= count:
        raise CalibrationError(f"num_dims must be in [1, {count - 1}], got {num_dims}")
    centering = np.eye(count) - np.ones((count, count)) / count
    gram = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    kept = np.clip(eigenvalues[:num_dims], 0.0, None)
    points = eigenvectors[:, :num_dims] * np.sqrt(kept)
    total_mass = float(np.abs(eigenvalues).sum())
    captured = float(kept.sum())
    stress = 1.0 - captured / total_mass if total_mass > 0 else 0.0
    return points, stress


def fit_coupling_weights(
    activity_rates: np.ndarray, points: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares solve ``W @ rho_i ~ p_i`` (centered both sides).

    Returns ``(weights, fitted_points)`` where ``weights`` has shape
    ``(num_modes, NUM_COMPONENTS)`` and ``fitted_points`` is
    ``rho_centered @ weights.T`` re-expressed in the points' frame.
    """
    rates = np.asarray(activity_rates, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if rates.shape[0] != points.shape[0]:
        raise CalibrationError(
            f"got {rates.shape[0]} activity profiles but {points.shape[0]} points"
        )
    rates_centered = rates - rates.mean(axis=0)
    points_centered = points - points.mean(axis=0)
    solution, _residuals, _rank, _sv = np.linalg.lstsq(
        rates_centered, points_centered, rcond=None
    )
    weights = solution.T  # (num_modes, NUM_COMPONENTS)
    fitted = rates_centered @ solution
    return weights, fitted


def refine_coupling_weights(
    initial_weights: np.ndarray,
    activity_rates: np.ndarray,
    geometry: np.ndarray,
    self_noise: np.ndarray,
    reference_j: np.ndarray,
    restarts: int = 3,
    seed: int = 20141213,
) -> np.ndarray:
    """Nonlinearly refine coupling weights against the reference matrix.

    The MDS + linear-least-squares initialization minimizes error in the
    embedding space, which over-weights the largest distances; this stage
    instead minimizes the **log-relative error of the final SAVAT
    matrix** over all unordered pairs — exactly the "shape fidelity"
    criterion the reproduction targets.  Uses an analytic Jacobian and a
    few randomized restarts (deterministic seed) to escape the
    occasional poor local minimum.

    Parameters
    ----------
    initial_weights:
        Starting point, shape ``(num_modes, NUM_COMPONENTS)``.
    activity_rates:
        Per-event rate vectors, shape ``(num_events, NUM_COMPONENTS)``.
    geometry:
        Pairwise ``G_AB`` factors, shape ``(num_events, num_events)``.
    self_noise:
        Per-event self-noise energies (J), length ``num_events``.
    reference_j:
        Symmetrized reference matrix in joules.
    """
    from scipy.optimize import least_squares

    num_modes = initial_weights.shape[0]
    rates_centered = activity_rates - activity_rates.mean(axis=0)
    scale = np.abs(rates_centered).max(axis=0)
    scale[scale == 0] = 1.0
    design = rates_centered / scale

    upper = np.triu_indices(reference_j.shape[0], 1)
    pair_design = design[upper[0]] - design[upper[1]]  # (num_pairs, C)
    pair_geometry = geometry[upper]
    pair_noise = self_noise[upper[0]] + self_noise[upper[1]]
    pair_reference = reference_j[upper]
    num_components = design.shape[1]

    def predict(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        levels = pair_design @ weights.T  # (num_pairs, M)
        return pair_geometry * np.sum(levels**2, axis=1) + pair_noise, levels

    def residuals(flat: np.ndarray) -> np.ndarray:
        predicted, _levels = predict(flat.reshape(num_modes, num_components))
        return np.log(predicted) - np.log(pair_reference)

    def jacobian(flat: np.ndarray) -> np.ndarray:
        weights = flat.reshape(num_modes, num_components)
        predicted, levels = predict(weights)
        rows = (
            (2.0 * pair_geometry / predicted)[:, None, None]
            * levels[:, :, None]
            * pair_design[:, None, :]
        )
        return rows.reshape(len(pair_reference), num_modes * num_components)

    rng = np.random.default_rng(seed)
    scaled_initial = initial_weights * scale
    best = None
    for trial in range(restarts):
        start = scaled_initial
        if trial:
            start = start * rng.normal(1.0, 0.3, start.shape) + rng.normal(
                0.0, 0.1 * np.abs(start).mean() + 1e-30, start.shape
            )
        solution = least_squares(
            residuals, start.ravel(), jac=jacobian, method="trf", max_nfev=3000
        )
        if best is None or solution.cost < best.cost:
            best = solution
    assert best is not None
    return best.x.reshape(num_modes, num_components) / scale


def calibrate(
    spec: MachineSpec,
    reference: ReferenceMatrix,
    num_modes: int = DEFAULT_NUM_MODES,
    refine: bool = True,
) -> CalibrationResult:
    """Fit the EM model of ``spec`` to a published matrix.

    See the module docstring for the math.  The reference is
    symmetrized first (A/B vs B/A differences are measurement error).
    With ``refine=True`` (default), the MDS/least-squares initialization
    is polished by :func:`refine_coupling_weights`.
    """
    profiles = profile_all_events(spec)
    names = EVENT_ORDER
    count = len(names)

    reference_j = reference.symmetrized() * ZEPTOJOULE
    self_noise = {name: float(reference_j[i, i]) / 2.0 for i, name in enumerate(names)}

    squared = np.zeros((count, count))
    for i, name_a in enumerate(names):
        for j, name_b in enumerate(names):
            if i == j:
                continue
            geometry = pair_geometry_factor(
                profiles[name_a].cycles_per_iteration,
                profiles[name_b].cycles_per_iteration,
                spec.clock_hz,
            )
            excess = reference_j[i, j] - self_noise[name_a] - self_noise[name_b]
            squared[i, j] = max(excess, 0.0) / geometry

    squared = (squared + squared.T) / 2.0
    points, stress = classical_mds(squared, num_modes)

    rates = np.stack([profiles[name].activity_rates for name in names])
    weights, fitted = fit_coupling_weights(rates, points)

    if refine:
        geometry = np.zeros((count, count))
        for i, name_a in enumerate(names):
            for j, name_b in enumerate(names):
                geometry[i, j] = pair_geometry_factor(
                    profiles[name_a].cycles_per_iteration,
                    profiles[name_b].cycles_per_iteration,
                    spec.clock_hz,
                )
        noise_vector = np.array([self_noise[name] for name in names])
        weights = refine_coupling_weights(
            weights, rates, geometry, noise_vector, reference_j
        )
        rates_centered = rates - rates.mean(axis=0)
        fitted = rates_centered @ weights.T

    return CalibrationResult(
        coupling=CouplingMatrix(weights, distance_m=reference.distance_m),
        self_noise_j=self_noise,
        profiles=profiles,
        points=points,
        fitted_points=fitted,
        reference=reference,
        stress=stress,
        clock_hz=spec.clock_hz,
    )
