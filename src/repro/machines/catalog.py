"""The three laptops of the paper's Figure 6.

Cache geometry is taken verbatim from Figure 6.  Clock rates, memory
latencies, and functional-unit timings are representative values for
those processor generations (the paper does not publish them); the
divider occupancies are chosen consistent with the published manuals —
the Pentium 3 M and Turion-era dividers are far slower than Core 2's
radix-16 divider, which is part of why their DIV SAVAT is so much
higher and why the paper notes the "high-SAVAT problem of DIV ... was
reduced when designing Core 2".
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machines.specs import MachineSpec
from repro.uarch.cache import CacheGeometry
from repro.uarch.functional_units import ActivityModel, FunctionalUnitTimings
from repro.uarch.hierarchy import MemoryLatencies

#: Intel Core 2 Duo laptop (Figure 6, row 1): 32 KB 8-way L1D,
#: 4096 KB 16-way L2.
CORE2DUO = MachineSpec(
    name="core2duo",
    display_name="Intel Core 2 Duo",
    clock_hz=2.4e9,
    l1_geometry=CacheGeometry(size_bytes=32 * 1024, ways=8, line_bytes=64),
    l2_geometry=CacheGeometry(size_bytes=4096 * 1024, ways=16, line_bytes=64),
    latencies=MemoryLatencies(l1_cycles=3, l2_cycles=14, memory_cycles=200),
    timings=FunctionalUnitTimings(mul_cycles=3, div_cycles=22),
    activity=ActivityModel(),
)

#: Intel Pentium 3 M laptop (Figure 6, row 2): 16 KB 4-way L1D,
#: 512 KB 8-way L2.  Older process: longer iterative divide, slower
#: clock, and a chattier front-side bus.
PENTIUM3M = MachineSpec(
    name="pentium3m",
    display_name="Intel Pentium 3 M",
    clock_hz=1.2e9,
    l1_geometry=CacheGeometry(size_bytes=16 * 1024, ways=4, line_bytes=64),
    l2_geometry=CacheGeometry(size_bytes=512 * 1024, ways=8, line_bytes=64),
    latencies=MemoryLatencies(l1_cycles=3, l2_cycles=9, memory_cycles=120),
    timings=FunctionalUnitTimings(mul_cycles=4, div_cycles=39),
    activity=ActivityModel(div_per_cycle=1.8, bus_per_transfer=12.0, dram_per_transfer=9.0),
)

#: AMD Turion X2 laptop (Figure 6, row 3): 64 KB 2-way L1D,
#: 1024 KB 16-way L2.  Contemporary with Core 2 but with a slow
#: radix-2-per-bit divider whose SAVAT "rivals off-chip accesses".
TURIONX2 = MachineSpec(
    name="turionx2",
    display_name="AMD Turion X2",
    clock_hz=2.0e9,
    l1_geometry=CacheGeometry(size_bytes=64 * 1024, ways=2, line_bytes=64),
    l2_geometry=CacheGeometry(size_bytes=1024 * 1024, ways=16, line_bytes=64),
    latencies=MemoryLatencies(l1_cycles=3, l2_cycles=12, memory_cycles=180),
    timings=FunctionalUnitTimings(mul_cycles=3, div_cycles=42),
    activity=ActivityModel(div_per_cycle=2.0),
)

#: All machines, keyed by catalog name.
MACHINES: dict[str, MachineSpec] = {
    spec.name: spec for spec in (CORE2DUO, PENTIUM3M, TURIONX2)
}

#: Catalog names in the paper's Figure 6 order.
MACHINE_NAMES: tuple[str, ...] = tuple(MACHINES)


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by catalog name (case-insensitive).

    Raises
    ------
    ConfigurationError
        If the name is not in the catalog.
    """
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; known machines: {', '.join(MACHINE_NAMES)}"
        ) from None
