"""Calibrated machines: spec + fitted EM model, ready for measurement.

``load_calibrated_machine("core2duo", distance_m=0.10)`` is the main
entry point for the measurement layer: it returns the machine spec
bundled with coupling weights and per-event self-noise calibrated
against the paper's published matrix for that machine and distance.

For distances the paper did not publish, the Core 2 Duo's three
published distances (10/50/100 cm) anchor a per-cell near-field/
far-field interpolation; the other two machines reuse the Core 2 Duo's
relative attenuation profile (the physics of distance roll-off lives in
the board/package geometry, which is similar across laptops, not in the
microarchitecture).  Interpolated targets are flagged ``exact=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.em.coupling import CouplingMatrix, DEFAULT_NUM_MODES
from repro.em.environment import NoiseEnvironment, quiet_lab_environment
from repro.em.propagation import interpolate_matrix
from repro.errors import CalibrationError, ConfigurationError
from repro.machines.calibration import CalibrationResult, calibrate
from repro.machines.catalog import get_machine
from repro.machines.reference_data import (
    CORE2DUO_10CM,
    CORE2DUO_50CM,
    CORE2DUO_100CM,
    REFERENCE_MATRICES,
    ReferenceMatrix,
)
from repro.machines.specs import MachineSpec
from repro.uarch.core import Core


@dataclass
class CalibratedMachine:
    """A machine spec plus its fitted EM model at one distance."""

    spec: MachineSpec
    calibration: CalibrationResult
    environment: NoiseEnvironment
    distance_m: float

    @property
    def name(self) -> str:
        """Catalog name of the underlying machine."""
        return self.spec.name

    @property
    def coupling(self) -> CouplingMatrix:
        """Fitted component-to-antenna couplings."""
        return self.calibration.coupling

    def self_noise_j(self, event_name: str) -> float:
        """Per-pair self-noise energy (J) for one event."""
        return self.calibration.self_noise_j[event_name.upper()]

    def make_core(self) -> Core:
        """A fresh simulated core for this machine."""
        return self.spec.make_core()

    def describe(self) -> str:
        """One-line summary for reports."""
        return f"{self.spec.describe()} at {self.distance_m * 100:.0f} cm"


def _core2duo_distance_target(distance_m: float) -> ReferenceMatrix:
    """Interpolated Core 2 Duo matrix at an unpublished distance."""
    anchors = [CORE2DUO_10CM, CORE2DUO_50CM, CORE2DUO_100CM]
    floor = float(min(np.diag(anchor.values_zj).min() for anchor in anchors))
    values = interpolate_matrix(
        [anchor.distance_m for anchor in anchors],
        [anchor.symmetrized() for anchor in anchors],
        distance_m,
        floor=floor,
    )
    return ReferenceMatrix(
        machine="core2duo",
        distance_m=distance_m,
        values_zj=np.clip(values, floor * 0.5, None),
        figure="interpolated",
        exact=False,
    )


def _scaled_distance_target(machine: str, distance_m: float) -> ReferenceMatrix:
    """Matrix for a non-Core-2 machine at an unpublished distance.

    Applies the Core 2 Duo's per-cell attenuation ratio (interpolated
    distance over 10 cm) to the machine's published 10 cm matrix.
    """
    base = REFERENCE_MATRICES[(machine, 0.10)]
    c2d_base = CORE2DUO_10CM.symmetrized()
    c2d_target = _core2duo_distance_target(distance_m).values_zj
    ratio = c2d_target / np.clip(c2d_base, 1e-12, None)
    values = base.symmetrized() * ratio
    return ReferenceMatrix(
        machine=machine,
        distance_m=distance_m,
        values_zj=values,
        figure="scaled from 10 cm via Core 2 Duo attenuation",
        exact=False,
    )


def reference_for(machine: str, distance_m: float) -> ReferenceMatrix:
    """Published or synthesized calibration target for (machine, distance).

    Raises
    ------
    CalibrationError
        If the machine has no published matrix at any distance.
    """
    machine = machine.lower()
    key = (machine, round(float(distance_m), 2))
    if key in REFERENCE_MATRICES:
        return REFERENCE_MATRICES[key]
    if machine == "core2duo":
        return _core2duo_distance_target(distance_m)
    if (machine, 0.10) in REFERENCE_MATRICES:
        return _scaled_distance_target(machine, distance_m)
    raise CalibrationError(
        f"no published matrices exist for machine {machine!r}; cannot calibrate"
    )


_CACHE: dict[tuple[str, float, int], CalibratedMachine] = {}


def load_calibrated_machine(
    name: str,
    distance_m: float = 0.10,
    num_modes: int = DEFAULT_NUM_MODES,
    environment: NoiseEnvironment | None = None,
) -> CalibratedMachine:
    """Load (and cache) a calibrated machine.

    Parameters
    ----------
    name:
        Catalog machine name (``"core2duo"``, ``"pentium3m"``,
        ``"turionx2"``).
    distance_m:
        Antenna distance; published distances calibrate directly,
        others via interpolation (see module docstring).
    num_modes:
        Field modes in the EM model.
    environment:
        Noise environment; defaults to the quiet lab of the paper's
        setup.  The environment does not participate in calibration
        (measurements are noise-floor-corrected, as on the real
        analyzer), so it may vary freely per measurement.

    Raises
    ------
    ConfigurationError
        If ``distance_m`` is not a positive, finite distance — caught
        here with a one-line error instead of surfacing later as a
        propagation-model surprise (zero/negative distances make the
        near-field roll-off divide by zero or invert).
    """
    distance = float(distance_m)
    if not math.isfinite(distance) or distance <= 0:
        raise ConfigurationError(
            f"distance_m must be a positive, finite distance in metres; "
            f"got {distance_m!r}"
        )
    key = (name.lower(), round(float(distance_m), 4), num_modes)
    if key not in _CACHE:
        spec = get_machine(name)
        reference = reference_for(name, distance_m)
        calibration = calibrate(spec, reference, num_modes=num_modes)
        _CACHE[key] = CalibratedMachine(
            spec=spec,
            calibration=calibration,
            environment=environment or quiet_lab_environment(),
            distance_m=float(distance_m),
        )
    machine = _CACHE[key]
    if environment is not None and machine.environment is not environment:
        machine = CalibratedMachine(
            spec=machine.spec,
            calibration=machine.calibration,
            environment=environment,
            distance_m=machine.distance_m,
        )
    return machine


def clear_calibration_cache() -> None:
    """Drop all cached calibrations (mostly for tests)."""
    _CACHE.clear()
