"""The paper's published SAVAT matrices, as machine-readable reference data.

These matrices are the calibration targets and the paper-vs-measured
baselines for EXPERIMENTS.md.  All values are in zeptojoules (zJ); rows
are the A event and columns the B event, both in the paper's order
(:data:`repro.isa.events.EVENT_ORDER`).

Provenance / OCR notes
----------------------
* **Figure 9/10** (Core 2 Duo, 10 cm, 80 kHz) is cleanly recoverable
  from the paper text and is stored verbatim.
* **Figures 17 and 18** (Core 2 Duo at 50 cm and 100 cm) are likewise
  stored verbatim.
* **Figure 12** (Pentium 3 M, 10 cm) appears in the source text as a
  flat stream of 120 values with one value ("2.9") displaced elsewhere
  on the page.  Re-flowing the stream into 11x11 after re-inserting the
  stray value at the front maximizes both symmetry (9.6% mean asymmetry
  vs >12% for every alternative alignment) and diagonal-minimality, and
  reproduces every quantitative claim in the prose (e.g. ADD/DIV = 10.0
  vs ADD/MUL = 0.9 — "an order of magnitude").
  :func:`reconstruction_report` reproduces that scoring.
* **Figure 14** (Turion X2, 10 cm) re-flows to exactly 121 values whose
  lower-right 10x10 block is strongly symmetric (e.g. STM/DIV = 33.9 vs
  DIV/STM = 32.2), but whose first row/column was scrambled by the OCR.
  We store the raw re-flow; calibration symmetrizes, which repairs the
  damaged cells with their better-preserved transposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER

#: Number of events (and matrix dimension).
NUM_EVENTS = len(EVENT_ORDER)


@dataclass(frozen=True)
class ReferenceMatrix:
    """One published 11x11 SAVAT matrix.

    Attributes
    ----------
    machine:
        Catalog machine name (``"core2duo"`` etc.).
    distance_m:
        Antenna distance of the measurement.
    values_zj:
        The matrix, zJ, rows = A event, columns = B event.
    figure:
        Paper figure number, for reports.
    exact:
        False when any cells were reconstructed from scrambled OCR.
    """

    machine: str
    distance_m: float
    values_zj: np.ndarray
    figure: str
    exact: bool = True

    def __post_init__(self) -> None:
        values = np.asarray(self.values_zj, dtype=np.float64)
        if values.shape != (NUM_EVENTS, NUM_EVENTS):
            raise ConfigurationError(
                f"reference matrix must be {NUM_EVENTS}x{NUM_EVENTS}, got {values.shape}"
            )
        if np.any(values < 0):
            raise ConfigurationError("reference SAVAT values must be non-negative")
        object.__setattr__(self, "values_zj", values)

    def symmetrized(self) -> np.ndarray:
        """(M + M.T) / 2 — used by calibration, which needs a metric-like
        target; the A/B vs B/A difference is measurement error (Section V)."""
        return (self.values_zj + self.values_zj.T) / 2.0

    def diagonal(self) -> np.ndarray:
        """The A/A diagonal (the paper's measurement-error estimate)."""
        return np.diag(self.values_zj)

    def cell(self, event_a: str, event_b: str) -> float:
        """Value for the (A, B) pairing by event name."""
        return float(
            self.values_zj[EVENT_ORDER.index(event_a.upper()), EVENT_ORDER.index(event_b.upper())]
        )


def _matrix(rows: list[list[float]]) -> np.ndarray:
    return np.asarray(rows, dtype=np.float64)


#: Figure 9/10 — Core 2 Duo, 10 cm, 80 kHz (zJ), stored verbatim.
CORE2DUO_10CM = ReferenceMatrix(
    machine="core2duo",
    distance_m=0.10,
    figure="Fig. 9/10",
    values_zj=_matrix(
        [
            [1.8, 2.4, 7.9, 11.5, 4.6, 4.4, 4.3, 4.2, 4.4, 4.2, 5.1],
            [2.3, 2.4, 8.8, 11.8, 4.3, 4.2, 3.8, 3.9, 3.9, 4.3, 4.2],
            [7.7, 7.7, 0.6, 0.8, 3.9, 3.5, 4.3, 3.6, 4.8, 3.8, 6.2],
            [11.5, 10.6, 0.8, 0.7, 5.1, 6.1, 6.1, 6.1, 6.1, 6.2, 10.1],
            [4.4, 4.2, 3.3, 5.8, 0.7, 0.6, 0.7, 0.7, 0.7, 0.7, 1.3],
            [4.5, 4.2, 3.8, 4.9, 0.7, 0.6, 0.7, 0.6, 0.6, 0.6, 1.2],
            [4.1, 3.8, 4.1, 6.4, 0.7, 0.7, 0.6, 0.6, 0.7, 0.6, 1.0],
            [4.2, 4.1, 4.1, 7.0, 0.7, 0.7, 0.6, 0.7, 0.6, 0.6, 1.0],
            [4.4, 4.0, 3.8, 7.3, 0.7, 0.6, 0.7, 0.6, 0.6, 0.6, 1.1],
            [4.4, 3.9, 3.7, 5.7, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 1.1],
            [5.0, 4.6, 6.9, 9.3, 1.3, 1.2, 1.0, 1.1, 1.1, 1.1, 0.8],
        ]
    ),
)

#: Figure 17 — Core 2 Duo, 50 cm (zJ), stored verbatim.
CORE2DUO_50CM = ReferenceMatrix(
    machine="core2duo",
    distance_m=0.50,
    figure="Fig. 17",
    values_zj=_matrix(
        [
            [1.7, 1.9, 1.3, 1.3, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.3],
            [2.0, 2.2, 1.5, 1.6, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.5],
            [1.2, 1.5, 0.6, 0.6, 0.7, 0.7, 0.6, 0.7, 0.7, 0.7, 0.8],
            [1.3, 1.6, 0.6, 0.6, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.9],
            [1.2, 1.4, 0.6, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.7, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.7, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.3, 1.5, 0.8, 0.9, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.8],
        ]
    ),
)

#: Figure 18 — Core 2 Duo, 100 cm (zJ), stored verbatim.
CORE2DUO_100CM = ReferenceMatrix(
    machine="core2duo",
    distance_m=1.00,
    figure="Fig. 18",
    values_zj=_matrix(
        [
            [1.7, 1.9, 1.2, 1.2, 1.2, 1.1, 1.1, 1.1, 1.2, 1.1, 1.3],
            [2.0, 2.2, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.5],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.2, 1.4, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.7],
            [1.3, 1.5, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.8],
        ]
    ),
)

#: Figure 12 source stream as it appears in the paper text (120 values;
#: the stray "2.9" from elsewhere on the page belongs at the front — see
#: the module docstring and :func:`reconstruction_report`).
_FIG12_STREAM: tuple[float, ...] = (
    29.2, 42.6, 51.8, 27.6, 28.6, 21.3, 25.5, 26.3, 25.8, 13.8, 23.5,
    8.8, 16.6, 19.9, 11.8, 11.4, 8.3, 11.9, 12.3, 12.0, 5.6,
    44.0, 15.4, 0.8, 1.2, 2.9, 2.6, 4.4, 4.0, 3.7, 4.8, 21.7,
    50.5, 16.9, 1.2, 0.8, 4.6, 4.6, 6.9, 6.6, 6.4, 7.3, 28.3,
    30.2, 11.0, 2.2, 4.4, 0.8, 0.8, 1.1, 1.0, 1.0, 1.3, 11.8,
    29.7, 9.9, 2.5, 4.3, 0.8, 0.8, 1.2, 1.1, 1.0, 1.2, 11.6,
    28.7, 12.3, 2.7, 4.9, 0.8, 0.8, 0.9, 0.8, 0.8, 0.9, 10.4,
    26.5, 11.3, 3.4, 6.4, 0.9, 1.0, 0.8, 0.9, 0.8, 0.9, 10.0,
    27.5, 11.5, 3.2, 5.8, 0.9, 0.9, 0.8, 0.9, 0.9, 0.9, 10.2,
    27.7, 11.5, 3.5, 6.5, 1.0, 1.0, 0.8, 0.9, 0.9, 0.9, 9.6,
    14.4, 5.2, 22.3, 27.8, 11.8, 11.9, 7.8, 12.4, 13.0, 10.4, 1.9,
)

#: Figure 12 — Pentium 3 M, 10 cm (zJ), reconstructed (see module docstring).
PENTIUM3M_10CM = ReferenceMatrix(
    machine="pentium3m",
    distance_m=0.10,
    figure="Fig. 12",
    exact=False,
    values_zj=np.asarray((2.9,) + _FIG12_STREAM, dtype=np.float64).reshape(
        NUM_EVENTS, NUM_EVENTS
    ),
)

#: Figure 14 source stream (exactly 121 values after re-flow).
_FIG14_STREAM: tuple[float, ...] = (
    5.6, 6.5, 23.4, 19.7, 9.5, 7.1, 15.1, 12.0, 13.1, 9.0, 4.6,
    24.0, 4.6, 7.7, 7.0, 3.4, 2.8, 3.0, 2.9, 2.8, 3.7,
    33.9, 45.3, 8.7, 1.2, 9.9, 8.9, 9.0, 6.8, 10.5, 7.6, 9.9,
    56.1, 25.4, 7.8, 2.5, 4.3, 7.4, 8.4, 3.2, 5.7, 5.0, 6.4,
    46.0, 18.1, 3.8, 5.1, 4.3, 0.9, 0.9, 0.9, 1.1, 0.9, 1.0,
    17.1, 15.0, 3.8, 7.8, 5.0, 0.9, 0.9, 0.9, 1.1, 1.0, 1.1,
    19.6, 20.3, 3.4, 6.3, 3.5, 1.0, 1.0, 1.1, 1.5, 1.3, 1.2,
    17.0, 14.3, 3.5, 6.9, 3.4, 0.9, 1.0, 0.9, 0.9, 0.9, 0.9,
    13.4, 12.3, 3.5, 4.2, 2.8, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9,
    17.0, 11.3, 3.7, 5.6, 2.1, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9,
    13.6, 5.1, 32.2, 52.6, 42.7, 17.7, 17.1, 17.1, 16.1, 15.9, 17.6, 4.3,
)

#: Figure 14 — Turion X2, 10 cm (zJ), reconstructed (see module docstring).
TURIONX2_10CM = ReferenceMatrix(
    machine="turionx2",
    distance_m=0.10,
    figure="Fig. 14",
    exact=False,
    values_zj=np.asarray(_FIG14_STREAM, dtype=np.float64).reshape(NUM_EVENTS, NUM_EVENTS),
)

#: All published matrices, keyed by (machine, distance in metres).
REFERENCE_MATRICES: dict[tuple[str, float], ReferenceMatrix] = {
    ("core2duo", 0.10): CORE2DUO_10CM,
    ("core2duo", 0.50): CORE2DUO_50CM,
    ("core2duo", 1.00): CORE2DUO_100CM,
    ("pentium3m", 0.10): PENTIUM3M_10CM,
    ("turionx2", 0.10): TURIONX2_10CM,
}

#: The selected instruction pairings of Figures 11/13/15/16, in chart order.
SELECTED_PAIRINGS: tuple[tuple[str, str], ...] = (
    ("ADD", "ADD"),
    ("ADD", "MUL"),
    ("ADD", "LDL1"),
    ("ADD", "DIV"),
    ("ADD", "LDL2"),
    ("ADD", "LDM"),
    ("LDL1", "LDL2"),
    ("LDL2", "LDM"),
    ("STL1", "STL2"),
    ("STL2", "STM"),
    ("STL2", "DIV"),
)

#: The paper's reported repeatability: per-cell std/mean over the ten
#: measurement repetitions averages about 0.05.
REPORTED_STD_OVER_MEAN = 0.05


def get_reference(machine: str, distance_m: float) -> ReferenceMatrix:
    """Look up a published matrix.

    Raises
    ------
    ConfigurationError
        If the paper did not publish a matrix for that combination.
    """
    key = (machine.lower(), round(float(distance_m), 2))
    try:
        return REFERENCE_MATRICES[key]
    except KeyError:
        published = ", ".join(f"{m}@{d:.2f}m" for m, d in REFERENCE_MATRICES)
        raise ConfigurationError(
            f"no published matrix for {machine!r} at {distance_m} m; "
            f"published: {published}"
        ) from None


def alignment_score(matrix: np.ndarray) -> tuple[float, int, int]:
    """Internal-consistency score used by the OCR re-flow selection.

    Returns ``(mean relative asymmetry, rows whose diagonal is the row
    minimum, columns whose diagonal is the column minimum)``.  Lower
    asymmetry and higher diagonal-minimality indicate a more plausible
    alignment, because the matrix is physically near-symmetric and the
    paper states the diagonal is (almost always) the smallest entry.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    asymmetry = float(np.abs(matrix - matrix.T).mean() / matrix.mean())
    row_minimal = sum(
        1 for i in range(matrix.shape[0]) if matrix[i, i] <= matrix[i].min() + 1e-9
    )
    column_minimal = sum(
        1 for i in range(matrix.shape[0]) if matrix[i, i] <= matrix[:, i].min() + 1e-9
    )
    return asymmetry, row_minimal, column_minimal


def reconstruction_report() -> dict[str, dict[str, float | int]]:
    """Score every candidate alignment of the Figure 12 stream.

    Re-runs the selection that chose "insert the stray 2.9 at the
    front": inserting at position 0 minimizes asymmetry (about 9.6%)
    while maximizing diagonal-minimality; every other insertion point is
    strictly worse.  Returned keys are ``"insert@<position>"``.
    """
    report: dict[str, dict[str, float | int]] = {}
    stream = list(_FIG12_STREAM)
    for position in range(0, NUM_EVENTS * NUM_EVENTS, 11):
        candidate = stream[:position] + [2.9] + stream[position:]
        matrix = np.asarray(candidate).reshape(NUM_EVENTS, NUM_EVENTS)
        asymmetry, row_minimal, column_minimal = alignment_score(matrix)
        report[f"insert@{position}"] = {
            "asymmetry": asymmetry,
            "diag_row_minimal": row_minimal,
            "diag_column_minimal": column_minimal,
        }
    return report
