"""Machine specification: everything needed to instantiate a simulated
laptop.

A :class:`MachineSpec` bundles the paper's Figure 6 cache geometry with
clock rate, memory latencies, functional-unit timings, and the
switching-activity model, and can mint fresh
:class:`~repro.uarch.core.Core` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.uarch.cache import CacheGeometry
from repro.uarch.core import Core
from repro.uarch.functional_units import ActivityModel, FunctionalUnitTimings
from repro.uarch.hierarchy import MemoryLatencies


@dataclass(frozen=True)
class MachineSpec:
    """A complete simulated-machine description.

    Attributes
    ----------
    name:
        Catalog key (``"core2duo"``...).
    display_name:
        Human-readable name used in reports (matches Figure 6).
    clock_hz:
        Core clock frequency.
    l1_geometry, l2_geometry:
        Cache geometry per the paper's Figure 6.
    latencies:
        Cache/memory access latencies in cycles.
    timings:
        Functional-unit occupancies.
    activity:
        Per-operation switching-activity quanta.
    """

    name: str
    display_name: str
    clock_hz: float
    l1_geometry: CacheGeometry
    l2_geometry: CacheGeometry
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)
    timings: FunctionalUnitTimings = field(default_factory=FunctionalUnitTimings)
    activity: ActivityModel = field(default_factory=ActivityModel)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock must be positive, got {self.clock_hz}")
        if not self.name:
            raise ConfigurationError("machine name must be non-empty")

    def make_core(self) -> Core:
        """A fresh core with cold caches for this machine."""
        return Core(
            clock_hz=self.clock_hz,
            l1_geometry=self.l1_geometry,
            l2_geometry=self.l2_geometry,
            latencies=self.latencies,
            timings=self.timings,
            activity=self.activity,
        )

    def describe(self) -> str:
        """One-line description in the style of the paper's Figure 6."""
        l1 = self.l1_geometry
        l2 = self.l2_geometry
        return (
            f"{self.display_name}: L1D {l1.size_bytes // 1024} KB {l1.ways}-way, "
            f"L2 {l2.size_bytes // 1024} KB {l2.ways}-way, "
            f"{self.clock_hz / 1e9:.1f} GHz"
        )
