"""Component-to-antenna coupling model.

Physical picture.  Switching activity on a microarchitectural component
modulates currents that ride on a handful of strong periodic carriers
(clock harmonics, bus clocks, VRM switching).  The attacker's antenna
receives each carrier with a strength and field structure that depend on
the component's physical layout and distance; a spectrum analyzer then
sums the *powers* of these incoherent carriers' modulation sidebands.

We model this with a small number of **field modes**: mode ``m`` sees a
weighted sum of component activities, ``v_m(t) = sum_c W[m, c] a_c(t)``
(volts at the instrument input), and measured band power adds across
modes.  Two or more modes are what let LDM and LDL2 both sit "far from"
ADD while also being far from *each other* — the paper's observation
that the LDM and LDL2 fields are distinguishable even though each is
about equally distinguishable from an ADD (Section V-A).

The numeric weights come from calibration against the paper's published
matrices (:mod:`repro.machines.calibration`); this module defines the
value objects and the projection math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS

#: Default number of field modes used by calibration.  Three modes give
#: the reference matrices a faithful low-rank embedding while keeping
#: the "incoherent carriers" story physically plausible.
DEFAULT_NUM_MODES = 3


@dataclass(frozen=True)
class CouplingMatrix:
    """Per-mode, per-component coupling weights (volts per activity unit).

    Attributes
    ----------
    weights:
        Array of shape ``(num_modes, NUM_COMPONENTS)``.
    distance_m:
        Antenna distance this coupling set applies to.
    """

    weights: np.ndarray
    distance_m: float

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != NUM_COMPONENTS:
            raise ConfigurationError(
                f"coupling weights must have shape (M, {NUM_COMPONENTS}), "
                f"got {weights.shape}"
            )
        if self.distance_m <= 0:
            raise ConfigurationError(f"distance must be positive, got {self.distance_m}")
        object.__setattr__(self, "weights", weights)

    @property
    def num_modes(self) -> int:
        """Number of field modes."""
        return self.weights.shape[0]

    def project_trace(self, trace: ActivityTrace) -> np.ndarray:
        """Per-mode antenna waveform for an activity trace.

        Returns an array of shape ``(num_modes, num_cycles)`` in volts.
        """
        return trace.project(self.weights)

    def project_rates(self, rates: np.ndarray) -> np.ndarray:
        """Per-mode signal level for a mean activity-rate vector.

        ``rates`` has length ``NUM_COMPONENTS``; the result has length
        ``num_modes``.  Used by the fast analytic measurement path.
        """
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != (NUM_COMPONENTS,):
            raise ConfigurationError(
                f"rate vector must have shape ({NUM_COMPONENTS},), got {rates.shape}"
            )
        return self.weights @ rates

    def scaled(self, factors: np.ndarray | float) -> "CouplingMatrix":
        """A new coupling set with per-component (or global) scaling."""
        return CouplingMatrix(self.weights * factors, self.distance_m)


def fourier_coefficient(waveform: np.ndarray, harmonic: int = 1) -> np.ndarray:
    """Complex Fourier coefficient(s) of periodic waveform(s).

    For a waveform ``x`` of length ``T`` (one full period), returns
    ``c_k = (1/T) * sum_t x[t] * exp(-2*pi*i*k*t/T)``, the amplitude of
    the ``k``-th harmonic (a pure cosine ``A*cos`` has ``|c_1| = A/2``).
    Accepts 1-D ``(T,)`` or 2-D ``(M, T)`` input; returns a scalar or a
    length-M vector accordingly.
    """
    waveform = np.asarray(waveform, dtype=np.float64)
    length = waveform.shape[-1]
    if length == 0:
        raise ConfigurationError("cannot take a Fourier coefficient of an empty waveform")
    phase = np.exp(-2j * np.pi * harmonic * np.arange(length) / length)
    return (waveform * phase).sum(axis=-1) / length


def band_power_from_modes(mode_coefficients: np.ndarray, impedance: float = 50.0) -> float:
    """Total sideband power (W) from per-mode Fourier coefficients.

    Each mode contributes ``2*|c1|^2 / R`` (the two-sided spectral lines
    of a real sinusoid of amplitude ``2*|c1|``); modes add incoherently.
    """
    coefficients = np.atleast_1d(np.asarray(mode_coefficients))
    return float(2.0 * np.sum(np.abs(coefficients) ** 2) / impedance)
