"""EM emanation physics: couplings, propagation, antenna, noise, synthesis."""

from repro.em.antenna import LoopAntenna
from repro.em.coupling import (
    CouplingMatrix,
    DEFAULT_NUM_MODES,
    band_power_from_modes,
    fourier_coefficient,
)
from repro.em.environment import (
    DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ,
    NoiseEnvironment,
    RadioInterferer,
    quiet_lab_environment,
)
from repro.em.propagation import (
    FAR_FIELD_POWER_EXPONENT,
    NEAR_FIELD_POWER_EXPONENT,
    NearFarModel,
    REFERENCE_DISTANCE_M,
    fit_near_far,
    interpolate_matrix,
)
from repro.em.synthesis import (
    DEFAULT_ENVELOPE_SAMPLES,
    DEFAULT_OVERSAMPLING,
    JitterModel,
    SynthesizedSignal,
    period_envelope,
    synthesize_measurement,
)

__all__ = [
    "CouplingMatrix",
    "DEFAULT_ENVELOPE_SAMPLES",
    "DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ",
    "DEFAULT_NUM_MODES",
    "DEFAULT_OVERSAMPLING",
    "FAR_FIELD_POWER_EXPONENT",
    "JitterModel",
    "LoopAntenna",
    "NEAR_FIELD_POWER_EXPONENT",
    "NearFarModel",
    "NoiseEnvironment",
    "REFERENCE_DISTANCE_M",
    "RadioInterferer",
    "SynthesizedSignal",
    "band_power_from_modes",
    "fit_near_far",
    "fourier_coefficient",
    "interpolate_matrix",
    "period_envelope",
    "quiet_lab_environment",
    "synthesize_measurement",
]
