"""Receive antenna model.

The paper measures with an AOR LA400 magnetic loop antenna feeding an
Agilent MXA N9020A spectrum analyzer.  For this reproduction the antenna
contributes (1) a frequency-independent effective gain over the narrow
measurement band — absorbed into the calibrated coupling scale — and
(2) a bandpass character that suppresses signals far outside its tuned
range.  The model is deliberately simple: the measurement band is only
2 kHz wide around 80 kHz, where a loop antenna's response is flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LoopAntenna:
    """A magnetic loop antenna with a flat in-band response.

    Attributes
    ----------
    name:
        Model name, for reports.
    gain:
        Voltage gain applied to in-band signals (dimensionless; the
        calibrated couplings already include the nominal gain, so this
        is 1.0 unless a user explicitly models a different antenna).
    low_cutoff_hz, high_cutoff_hz:
        Band edges outside which the response rolls off; used only for
        validation that a requested measurement is in-band.
    """

    name: str = "AOR LA400"
    gain: float = 1.0
    low_cutoff_hz: float = 10e3
    high_cutoff_hz: float = 500e6

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError(f"antenna gain must be positive, got {self.gain}")
        if not 0 < self.low_cutoff_hz < self.high_cutoff_hz:
            raise ConfigurationError(
                f"invalid antenna band [{self.low_cutoff_hz}, {self.high_cutoff_hz}] Hz"
            )

    def in_band(self, frequency_hz: float) -> bool:
        """Whether ``frequency_hz`` lies inside the antenna's flat band."""
        return self.low_cutoff_hz <= frequency_hz <= self.high_cutoff_hz

    def response(self, frequency_hz: float) -> float:
        """Voltage response at ``frequency_hz``.

        Flat ``gain`` in band; a gentle first-order roll-off outside.
        """
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        if self.in_band(frequency_hz):
            return self.gain
        if frequency_hz < self.low_cutoff_hz:
            return self.gain * frequency_hz / self.low_cutoff_hz
        return self.gain * self.high_cutoff_hz / frequency_hz
