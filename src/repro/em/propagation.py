"""Distance dependence of the received side-channel signal.

EM sources inside a computer have both **near-field** terms, whose power
falls off like ``r^-6`` and which dominate at the paper's 10 cm
measurements, and **far-field** (radiating) terms falling like ``r^-2``.
Short on-chip wires are poor radiators (near-field dominated), while the
long processor-memory bus traces and DRAM wiring radiate comparatively
well.  This is the mechanism behind the paper's Section V-B findings:

* SAVAT drops sharply from 10 cm to 50 cm but little from 50 cm to
  100 cm (the near-field terms are already gone by 50 cm);
* at 50/100 cm the off-chip events (LDM/STM) become by far the most
  distinguishable, while the L2 and DIV pairings collapse toward the
  measurement floor.

:class:`NearFarModel` captures one signal's two-term power law; the
module also provides a least-squares fit from measurements at several
distances, used to interpolate SAVAT matrices at distances the paper
did not publish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, ConfigurationError

#: Reference distance (m) at which coupling amplitudes are quoted.
REFERENCE_DISTANCE_M = 0.10

#: Power-law exponent of near-field *power* (fields ~ r^-3).
NEAR_FIELD_POWER_EXPONENT = 6.0

#: Power-law exponent of far-field *power* (fields ~ r^-1).
FAR_FIELD_POWER_EXPONENT = 2.0


@dataclass(frozen=True)
class NearFarModel:
    """Two-term power law: ``P(d) = near*(d0/d)^6 + far*(d0/d)^2``.

    ``near`` and ``far`` are the power contributions at the reference
    distance ``d0``.  Both must be non-negative.
    """

    near: float
    far: float
    reference_m: float = REFERENCE_DISTANCE_M

    def __post_init__(self) -> None:
        if self.near < 0 or self.far < 0:
            raise ConfigurationError(
                f"near/far contributions must be non-negative, got {self.near}/{self.far}"
            )
        if self.reference_m <= 0:
            raise ConfigurationError(f"reference distance must be positive, got {self.reference_m}")

    def power_at(self, distance_m: float) -> float:
        """Received power at ``distance_m``, in the units of near/far."""
        if distance_m <= 0:
            raise ConfigurationError(f"distance must be positive, got {distance_m}")
        ratio = self.reference_m / distance_m
        return (
            self.near * ratio**NEAR_FIELD_POWER_EXPONENT
            + self.far * ratio**FAR_FIELD_POWER_EXPONENT
        )

    def amplitude_ratio(self, distance_m: float) -> float:
        """sqrt(P(d) / P(d0)) — amplitude scaling relative to reference."""
        total = self.near + self.far
        if total <= 0:
            return 0.0
        return float(np.sqrt(self.power_at(distance_m) / total))

    @property
    def far_fraction(self) -> float:
        """Fraction of reference-distance power that is far-field."""
        total = self.near + self.far
        return self.far / total if total > 0 else 0.0


def fit_near_far(
    distances_m: np.ndarray, powers: np.ndarray, reference_m: float = REFERENCE_DISTANCE_M
) -> NearFarModel:
    """Fit a :class:`NearFarModel` to power measurements.

    A non-negative least-squares fit of the two-term power law; with two
    or three distances (the paper's 10/50/100 cm) this is exactly or
    mildly over-determined.

    Raises
    ------
    CalibrationError
        If fewer than two distinct distances are supplied.
    """
    distances = np.asarray(distances_m, dtype=np.float64)
    powers = np.asarray(powers, dtype=np.float64)
    if distances.shape != powers.shape or distances.ndim != 1:
        raise CalibrationError(
            f"distances and powers must be 1-D and congruent, got "
            f"{distances.shape} and {powers.shape}"
        )
    if len(np.unique(distances)) < 2:
        raise CalibrationError("need at least two distinct distances for a near/far fit")
    if np.any(distances <= 0):
        raise CalibrationError("distances must be positive")
    if np.any(powers < 0):
        raise CalibrationError("powers must be non-negative")

    ratios = reference_m / distances
    design = np.stack(
        [ratios**NEAR_FIELD_POWER_EXPONENT, ratios**FAR_FIELD_POWER_EXPONENT], axis=1
    )
    # Non-negative LSQ via scipy keeps both terms physical.
    from scipy.optimize import nnls

    solution, _residual = nnls(design, powers)
    return NearFarModel(near=float(solution[0]), far=float(solution[1]), reference_m=reference_m)


def interpolate_matrix(
    distances_m: list[float],
    matrices: list[np.ndarray],
    target_distance_m: float,
    floor: float,
) -> np.ndarray:
    """Interpolate a SAVAT matrix to a new distance, cell by cell.

    Each matrix cell's above-floor power gets its own near/far fit; the
    floor (instrument-limited) is added back unchanged, because the
    paper's A/A diagonals are flat across distance.

    Parameters
    ----------
    distances_m, matrices:
        Matched lists of measured distances and SAVAT matrices (zJ).
    target_distance_m:
        Distance to predict.
    floor:
        Measurement floor (zJ) to subtract/re-add.
    """
    if len(distances_m) != len(matrices) or len(distances_m) < 2:
        raise CalibrationError("need >= 2 (distance, matrix) pairs to interpolate")
    shape = matrices[0].shape
    stack = np.stack([np.asarray(matrix, dtype=np.float64) for matrix in matrices])
    if any(matrix.shape != shape for matrix in matrices):
        raise CalibrationError("all matrices must share a shape")
    distances = np.asarray(distances_m, dtype=np.float64)
    result = np.empty(shape)
    for row in range(shape[0]):
        for column in range(shape[1]):
            cell = np.clip(stack[:, row, column] - floor, 0.0, None)
            model = fit_near_far(distances, cell)
            result[row, column] = model.power_at(target_distance_m) + floor
    return result
