"""Measurement-environment noise model.

Figure 8 of the paper (the ADD/ADD spectrum) shows what limits the
measurement when there is no real A/B difference: the instrument's
sensitivity floor (about 6e-18 W/Hz on their analyzer), occasional weak
external radio signals, and a small residual from imperfect matching of
the not-under-test halves.  This module models the first two; the third
arises in the measurement layer as alternation-loop noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import REFERENCE_IMPEDANCE, thermal_noise_psd

#: Instrument sensitivity floor from Figure 8, in W/Hz.
DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ = 6e-18


@dataclass(frozen=True)
class RadioInterferer:
    """A narrowband external radio signal.

    The paper's Figure 8 annotates a "weak external radio signal" just
    outside the alternation band; interferers are part of why the
    methodology lets the operator *choose* a quiet alternation
    frequency.
    """

    frequency_hz: float
    power_w: float
    bandwidth_hz: float = 10.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"interferer frequency must be positive, got {self.frequency_hz}")
        if self.power_w < 0:
            raise ConfigurationError(f"interferer power must be non-negative, got {self.power_w}")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(f"interferer bandwidth must be positive, got {self.bandwidth_hz}")

    def power_in_band(self, f_low: float, f_high: float) -> float:
        """Portion of this interferer's power inside ``[f_low, f_high]``.

        The interferer's power is spread uniformly over its bandwidth.
        """
        low = self.frequency_hz - self.bandwidth_hz / 2.0
        high = self.frequency_hz + self.bandwidth_hz / 2.0
        overlap = max(0.0, min(high, f_high) - max(low, f_low))
        return self.power_w * overlap / self.bandwidth_hz


@dataclass(frozen=True)
class NoiseEnvironment:
    """Noise floor plus external interferers for one measurement setup."""

    instrument_floor_w_per_hz: float = DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ
    include_thermal: bool = True
    interferers: tuple[RadioInterferer, ...] = ()

    def __post_init__(self) -> None:
        if self.instrument_floor_w_per_hz < 0:
            raise ConfigurationError(
                f"instrument floor must be non-negative, got {self.instrument_floor_w_per_hz}"
            )

    @property
    def total_floor_w_per_hz(self) -> float:
        """Broadband noise PSD: instrument floor plus (optional) kT."""
        floor = self.instrument_floor_w_per_hz
        if self.include_thermal:
            floor += thermal_noise_psd()
        return floor

    def band_noise_power(
        self,
        f_center_hz: float,
        half_width_hz: float,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Noise power (W) collected in ``f_center +/- half_width``.

        With an ``rng``, the broadband part is drawn from the chi-squared
        distribution the periodogram of white noise actually follows
        (2 degrees of freedom per resolved 1-Hz bin), so repeated
        measurements fluctuate realistically; without one, the expected
        value is returned.
        """
        if half_width_hz <= 0:
            raise ConfigurationError(f"band half-width must be positive, got {half_width_hz}")
        bandwidth = 2.0 * half_width_hz
        mean_power = self.total_floor_w_per_hz * bandwidth
        if rng is not None:
            # Sum of ~bandwidth independent exponential bins.
            bins = max(int(round(bandwidth)), 1)
            mean_power = mean_power * rng.chisquare(2 * bins) / (2 * bins)
        for interferer in self.interferers:
            mean_power += interferer.power_in_band(
                f_center_hz - half_width_hz, f_center_hz + half_width_hz
            )
        return mean_power

    def time_domain_noise(
        self,
        num_samples: int,
        sample_rate_hz: float,
        rng: np.random.Generator,
        impedance: float = REFERENCE_IMPEDANCE,
    ) -> np.ndarray:
        """Synthesize noise voltage samples matching the environment.

        White Gaussian noise realizes the broadband floor; each
        interferer adds a tone with random phase and slow phase noise
        matching its bandwidth.
        """
        if num_samples <= 0:
            raise ConfigurationError(f"num_samples must be positive, got {num_samples}")
        if sample_rate_hz <= 0:
            raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
        # One-sided PSD N0 (W/Hz) -> V^2/Hz is N0*R; sample variance N0*R*fs/2.
        variance = self.total_floor_w_per_hz * impedance * sample_rate_hz / 2.0
        noise = rng.normal(0.0, np.sqrt(variance), size=num_samples)
        times = np.arange(num_samples) / sample_rate_hz
        for interferer in self.interferers:
            amplitude = np.sqrt(2.0 * interferer.power_w * impedance)
            phase_walk = np.cumsum(
                rng.normal(0.0, np.sqrt(interferer.bandwidth_hz / sample_rate_hz), num_samples)
            )
            noise += amplitude * np.cos(
                2.0 * np.pi * interferer.frequency_hz * times
                + 2.0 * np.pi * phase_walk
                + rng.uniform(0.0, 2.0 * np.pi)
            )
        return noise


def quiet_lab_environment() -> NoiseEnvironment:
    """The default environment used for the paper-matching campaigns.

    Matches Figure 8: instrument floor at ~6e-18 W/Hz, thermal noise
    (negligible by comparison), and one weak external radio signal a few
    hundred hertz above the measurement band, about 6 dB over the floor
    integrated across its bandwidth.
    """
    return NoiseEnvironment(
        instrument_floor_w_per_hz=DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ,
        include_thermal=True,
        interferers=(
            RadioInterferer(frequency_hz=81_450.0, power_w=2.5e-16, bandwidth_hz=30.0),
        ),
    )
