"""Time-domain synthesis of the received EM signal.

The measurement methodology's signal is periodic at the alternation
frequency, but — as Figure 7 shows — the real alternation frequency is
shifted from the intended one and *drifts* during the measurement
(OS interference, DVFS, timer activity), dispersing the received power
over tens to hundreds of hertz.  Synthesis therefore tiles the simulated
one-period activity envelope over the measurement interval with a
per-period jitter/drift model, producing per-mode voltage sample streams
that the spectrum-analyzer model then digests exactly like a real
instrument would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.em.coupling import CouplingMatrix
from repro.uarch.activity import ActivityTrace

#: Default number of envelope samples per alternation period.
DEFAULT_ENVELOPE_SAMPLES = 64

#: Default sample rate as a multiple of the alternation frequency.
DEFAULT_OVERSAMPLING = 32

#: Cached sample-time grids, keyed by (num_samples, sample_rate_hz).
#: All repetitions of a cell share one grid (the capture geometry is
#: jitter-independent), and campaigns revisit the same geometry whenever
#: two pairs tune to the same achieved frequency.
_TIME_GRID_CACHE: dict[tuple[int, float], np.ndarray] = {}
_TIME_GRID_CACHE_SIZE = 4


def measurement_time_grid(num_samples: int, sample_rate_hz: float) -> np.ndarray:
    """Sample times ``arange(num_samples) / sample_rate_hz``, cached.

    Returns a shared read-only array: building a 2.5M-entry grid per
    repetition is pure waste since the grid only depends on the capture
    geometry.  Values are bit-identical to the inline expression.
    """
    key = (int(num_samples), float(sample_rate_hz))
    cached = _TIME_GRID_CACHE.get(key)
    if cached is None:
        if len(_TIME_GRID_CACHE) >= _TIME_GRID_CACHE_SIZE:
            _TIME_GRID_CACHE.pop(next(iter(_TIME_GRID_CACHE)))
        cached = np.arange(num_samples) / sample_rate_hz
        cached.setflags(write=False)
        _TIME_GRID_CACHE[key] = cached
    return cached


#: Single-slot output buffer for ``reuse_buffer`` synthesis, keyed by
#: (modes, num_samples).
_SAMPLE_BUFFER: dict[tuple[int, int], np.ndarray] = {}


def _sample_buffer(modes: int, num_samples: int) -> np.ndarray:
    key = (modes, num_samples)
    buffer = _SAMPLE_BUFFER.get(key)
    if buffer is None:
        _SAMPLE_BUFFER.clear()
        buffer = np.empty(key)
        _SAMPLE_BUFFER[key] = buffer
    return buffer


def tile_period_indices(
    starts: np.ndarray,
    durations: np.ndarray,
    times: np.ndarray,
    points_per_period: int,
) -> np.ndarray:
    """Envelope-sample index for each output sample of a jittered tiling.

    Bit-identical to the reference formulation

    .. code-block:: python

        period_index = np.clip(np.searchsorted(starts, times, "right") - 1,
                               0, num_periods - 1)
        phase = (times - starts[period_index]) / durations[period_index]
        np.clip((phase * points_per_period).astype(np.int64),
                0, points_per_period - 1)

    but searches the short period-boundary array against the long time
    grid instead of the other way round (``P log N`` comparisons instead
    of ``N log P``) and expands the per-period start/duration with
    ``np.repeat`` — the same float values land in the same arithmetic,
    only far fewer gathers run.
    """
    num_periods = len(durations)
    boundaries = np.searchsorted(times, starts, side="left")
    counts = np.diff(boundaries)
    # Samples past the last period boundary belong to the final period
    # (the reference formulation's upper clip).
    counts[-1] += len(times) - boundaries[-1]
    start_grid = np.repeat(starts[:num_periods], counts)
    duration_grid = np.repeat(durations, counts)
    # phase = (times - start) / duration, scaled to envelope points —
    # computed in place over the expanded grids (same operations in the
    # same order as the reference, without the intermediate arrays).
    np.subtract(times, start_grid, out=start_grid)
    np.divide(start_grid, duration_grid, out=start_grid)
    np.multiply(start_grid, points_per_period, out=start_grid)
    indices = start_grid.astype(np.int64)
    np.clip(indices, 0, points_per_period - 1, out=indices)
    return indices


@dataclass(frozen=True)
class JitterModel:
    """Per-period timing imperfection of the alternation loop.

    Attributes
    ----------
    period_sigma:
        Standard deviation of independent per-period duration error, as
        a fraction of the nominal period (fast jitter — spreads power
        into a pedestal around the carrier).
    drift_sigma:
        Per-period step of a random walk in the duration multiplier
        (slow drift — wanders the instantaneous alternation frequency,
        the "frequency dispersion" annotation of Figure 7).  The default
        wanders a ~0.5 s capture by a few hundred hertz at 80 kHz,
        matching the dispersion the paper shows.
    """

    period_sigma: float = 2e-3
    drift_sigma: float = 1.5e-5

    def __post_init__(self) -> None:
        if self.period_sigma < 0 or self.drift_sigma < 0:
            raise ConfigurationError("jitter sigmas must be non-negative")

    def period_multipliers(
        self, num_periods: int, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Duration multiplier for each of ``num_periods`` periods.

        ``rng`` may be ``None`` only when both sigmas are zero (the
        deterministic expected-value path synthesizes without jitter).
        """
        if num_periods <= 0:
            raise ConfigurationError(f"num_periods must be positive, got {num_periods}")
        if rng is None and (self.period_sigma > 0 or self.drift_sigma > 0):
            raise ConfigurationError("jitter with non-zero sigma requires an rng")
        multipliers = np.ones(num_periods)
        if self.drift_sigma > 0:
            multipliers += np.cumsum(rng.normal(0.0, self.drift_sigma, num_periods))
        if self.period_sigma > 0:
            multipliers += rng.normal(0.0, self.period_sigma, num_periods)
        return np.clip(multipliers, 0.5, 1.5)


@dataclass
class SynthesizedSignal:
    """Per-mode voltage streams covering one measurement interval.

    ``samples`` has shape ``(num_modes, num_samples)``; the spectrum
    analyzer sums mode powers (incoherent carriers — see
    :mod:`repro.em.coupling`).
    """

    samples: np.ndarray
    sample_rate_hz: float
    nominal_frequency_hz: float

    @property
    def num_modes(self) -> int:
        return self.samples.shape[0]

    @property
    def num_samples(self) -> int:
        return self.samples.shape[1]

    @property
    def duration_s(self) -> float:
        return self.num_samples / self.sample_rate_hz


def period_envelope(
    trace: ActivityTrace,
    couplings: CouplingMatrix,
    envelope_samples: int = DEFAULT_ENVELOPE_SAMPLES,
) -> np.ndarray:
    """Collapse a one-period activity trace to a per-mode envelope.

    Returns shape ``(num_modes, P)`` where ``P <= envelope_samples``:
    the cycle-resolution trace is block-averaged, then projected through
    the couplings.  Block-averaging is the physical statement that the
    antenna/analyzer chain cannot follow single-cycle structure at these
    measurement frequencies — only the activity *envelope* matters.
    """
    if envelope_samples < 4:
        raise ConfigurationError(f"need >= 4 envelope samples, got {envelope_samples}")
    factor = max(-(-trace.num_cycles // envelope_samples), 1)
    coarse = trace.downsample(factor)
    return couplings.project_trace(coarse)


def synthesize_measurement(
    trace: ActivityTrace,
    couplings: CouplingMatrix,
    duration_s: float,
    rng: np.random.Generator | None,
    jitter: JitterModel | None = None,
    sample_rate_hz: float | None = None,
    envelope_samples: int = DEFAULT_ENVELOPE_SAMPLES,
    envelope: np.ndarray | None = None,
    reuse_buffer: bool = False,
) -> SynthesizedSignal:
    """Tile one alternation period into a full measurement interval.

    Parameters
    ----------
    trace:
        Activity trace of exactly one alternation period.
    couplings:
        Component-to-antenna couplings for the measured distance.
    duration_s:
        Measurement length; 1 s supports the paper's 1 Hz RBW.
    rng:
        Randomness source for the jitter model; ``None`` requires a
        zero-sigma jitter model (deterministic tiling).
    jitter:
        Timing imperfection model (default: :class:`JitterModel`).
    sample_rate_hz:
        Output sample rate; defaults to 32x the alternation frequency,
        high enough that envelope-step harmonics alias nowhere near the
        measurement band.
    envelope_samples:
        Per-period envelope resolution.
    envelope:
        Precomputed :func:`period_envelope` of ``trace``/``couplings``.
        The envelope is jitter-independent, so callers measuring many
        repetitions of one cell compute it once and pass it here; only
        the jittered tiling differs per repetition.
    reuse_buffer:
        Write the output samples into a shared process-wide buffer
        instead of a fresh allocation.  Only safe when the returned
        signal is fully consumed before the next ``reuse_buffer`` call
        (the batched repetition loop does this); the default always
        allocates.

    Raises
    ------
    MeasurementError
        If the duration is non-positive.
    """
    if duration_s <= 0:
        raise MeasurementError(f"measurement duration must be positive, got {duration_s}")
    jitter = jitter or JitterModel()
    nominal_period_s = trace.duration_s
    nominal_frequency = 1.0 / nominal_period_s
    if sample_rate_hz is None:
        sample_rate_hz = DEFAULT_OVERSAMPLING * nominal_frequency

    if envelope is None:
        envelope = period_envelope(trace, couplings, envelope_samples)
    points_per_period = envelope.shape[1]

    # Generate enough jittered periods to cover the interval.
    num_periods = int(np.ceil(duration_s / nominal_period_s * 1.1)) + 4
    multipliers = jitter.period_multipliers(num_periods, rng)
    durations = nominal_period_s * multipliers
    starts = np.concatenate(([0.0], np.cumsum(durations)))

    num_samples = int(round(duration_s * sample_rate_hz))
    times = measurement_time_grid(num_samples, sample_rate_hz)
    envelope_index = tile_period_indices(starts, durations, times, points_per_period)

    if reuse_buffer:
        samples = np.take(
            envelope,
            envelope_index,
            axis=1,
            out=_sample_buffer(envelope.shape[0], num_samples),
        )
    else:
        samples = envelope[:, envelope_index]
    return SynthesizedSignal(
        samples=samples,
        sample_rate_hz=float(sample_rate_hz),
        nominal_frequency_hz=nominal_frequency,
    )
