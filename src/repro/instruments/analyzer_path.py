"""Global switch between the band-limited and the reference analyzer.

The full signal-path measurement (``method="full"``) keeps two spectrum
pipelines: the original *reference* analyzer — a full-length Hann/rfft
Welch sweep over every ``N//2 + 1`` bin — and a *band-limited* fast
analyzer that evaluates only the bins covering the measurement band
through :class:`~repro.instruments.signal_processing.ZoomBandPlan`.
The two agree on every per-sample ``savat_zj`` to better than 1e-9
relative (``tests/core/test_analyzer_parity.py``), so the band analyzer
is on by default and the full sweep is kept as the executable
specification, mirroring :mod:`repro.uarch.fastpath`.

Control:

* ``SAVAT_REFERENCE_ANALYZER=1`` in the environment forces the
  reference analyzer process-wide (workers spawned by the campaign
  executor inherit it).
* :func:`use_reference_analyzer` / :func:`use_band_analyzer` force a
  path for a ``with`` block (tests and benchmarks use these to compare
  the two).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable that disables the band-limited analyzer when
#: set truthy.
REFERENCE_ANALYZER_ENV = "SAVAT_REFERENCE_ANALYZER"

_TRUTHY = {"1", "true", "yes", "on"}

#: Per-process override installed by the context managers (None: follow
#: the environment).
_forced: bool | None = None


def band_analyzer_enabled() -> bool:
    """True when the band-limited analyzer should be used."""
    if _forced is not None:
        return _forced
    return os.environ.get(REFERENCE_ANALYZER_ENV, "").strip().lower() not in _TRUTHY


def reference_analyzer_enabled() -> bool:
    """True when the full-spectrum reference analyzer should be used."""
    return not band_analyzer_enabled()


def set_band_analyzer(enabled: bool | None) -> None:
    """Force the band analyzer on/off, or ``None`` to follow the environment."""
    global _forced
    _forced = enabled


@contextmanager
def use_reference_analyzer() -> Iterator[None]:
    """Force the full-spectrum reference analyzer within a ``with`` block."""
    previous = _forced
    set_band_analyzer(False)
    try:
        yield
    finally:
        set_band_analyzer(previous)


@contextmanager
def use_band_analyzer() -> Iterator[None]:
    """Force the band-limited analyzer within a ``with`` block."""
    previous = _forced
    set_band_analyzer(True)
    try:
        yield
    finally:
        set_band_analyzer(previous)


__all__ = [
    "REFERENCE_ANALYZER_ENV",
    "band_analyzer_enabled",
    "reference_analyzer_enabled",
    "set_band_analyzer",
    "use_band_analyzer",
    "use_reference_analyzer",
]
