"""Spectrum-analyzer model (the paper's Agilent MXA N9020A stand-in).

The analyzer turns voltage samples into a W/Hz spectrum at a chosen
resolution bandwidth, adds its own noise floor (and whatever external
interference the environment contains), and integrates band power — the
exact signal path Section IV describes: "the spectrum around the
alternation frequency was recorded with a resolution bandwidth of 1 Hz
... the measured value we use is the total received signal power in the
frequency band from 1 kHz below to 1 kHz above the alternation
frequency."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.em.environment import NoiseEnvironment
from repro.em.synthesis import SynthesizedSignal
from repro.instruments.signal_processing import (
    _comparison_bin_range,
    band_bin_range,
    band_power,
    band_welch_psd,
    peak_frequency,
    rfft_bin_width,
    welch_psd,
)
from repro.units import REFERENCE_IMPEDANCE


@dataclass
class Spectrum:
    """A recorded spectrum: frequencies (Hz) and PSD (W/Hz)."""

    freqs_hz: np.ndarray
    psd_w_per_hz: np.ndarray
    rbw_hz: float

    def __post_init__(self) -> None:
        self.freqs_hz = np.asarray(self.freqs_hz, dtype=np.float64)
        self.psd_w_per_hz = np.asarray(self.psd_w_per_hz, dtype=np.float64)
        if self.freqs_hz.shape != self.psd_w_per_hz.shape:
            raise MeasurementError("spectrum frequency and PSD arrays differ in shape")

    def band_power_w(self, f_center_hz: float, half_width_hz: float) -> float:
        """Total power (W) in ``f_center +/- half_width``."""
        return band_power(self.freqs_hz, self.psd_w_per_hz, f_center_hz, half_width_hz)

    def peak_hz(self, f_low_hz: float | None = None, f_high_hz: float | None = None) -> float:
        """Frequency of the strongest bin, optionally within a range."""
        return peak_frequency(self.freqs_hz, self.psd_w_per_hz, f_low_hz, f_high_hz)

    def slice(self, f_low_hz: float, f_high_hz: float) -> "Spectrum":
        """Sub-spectrum covering ``[f_low, f_high]`` (for plots/reports)."""
        mask = (self.freqs_hz >= f_low_hz) & (self.freqs_hz <= f_high_hz)
        if not np.any(mask):
            raise MeasurementError(
                f"slice [{f_low_hz}, {f_high_hz}] Hz is outside the recorded span"
            )
        return Spectrum(self.freqs_hz[mask], self.psd_w_per_hz[mask], self.rbw_hz)


@dataclass
class SpectrumAnalyzer:
    """Welch-based spectrum analyzer with an additive noise floor.

    Attributes
    ----------
    rbw_hz:
        Resolution bandwidth.  Requires at least ``1/rbw`` seconds of
        signal.
    environment:
        Noise environment whose floor and interferers are added to every
        sweep.  ``None`` measures noiselessly (useful in unit tests).
    impedance:
        Input impedance used to convert V^2/Hz to W/Hz.
    """

    rbw_hz: float = 1.0
    environment: NoiseEnvironment | None = None
    impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.rbw_hz <= 0:
            raise MeasurementError(f"resolution bandwidth must be positive, got {self.rbw_hz}")
        if self.impedance <= 0:
            raise MeasurementError(f"impedance must be positive, got {self.impedance}")

    def measure(
        self,
        signal: SynthesizedSignal | np.ndarray,
        sample_rate_hz: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> Spectrum:
        """Record one spectrum sweep.

        Parameters
        ----------
        signal:
            A :class:`~repro.em.synthesis.SynthesizedSignal`, or raw
            voltage samples (1-D, or 2-D mode-stacked) with
            ``sample_rate_hz`` supplied.
        rng:
            Randomness for the noise-floor realization; without it the
            expected (mean) noise PSD is added, making the sweep
            deterministic.
        """
        samples, sample_rate_hz = self._resolve_input(signal, sample_rate_hz)
        segment_length = self._segment_length(samples, sample_rate_hz)
        freqs, psd_v2 = welch_psd(samples, sample_rate_hz, segment_length)
        psd_w = psd_v2 / self.impedance
        psd_w = psd_w + self._noise_psd(freqs, rng)
        return Spectrum(freqs, psd_w, self.rbw_hz)

    def measure_band(
        self,
        signal: SynthesizedSignal | np.ndarray,
        f_center_hz: float,
        half_width_hz: float,
        sample_rate_hz: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> Spectrum:
        """Record only the sweep bins covering ``f_center +/- half_width``.

        The returned :class:`Spectrum` holds exactly the bins a full
        :meth:`measure` sweep sliced to that band would hold — same
        frequencies, same per-bin signal PSD to ~1e-12 relative, and
        *bit-identical* per-bin noise: the noise floor realization is
        drawn over the full sweep grid (one ``chisquare`` call of the
        same shape as the reference path, keeping ``rng`` streams in
        lockstep) and then sliced, and interferer power is spread over
        the full-grid bin counts.  Only the signal transform itself is
        band-limited — which is where all the time goes.
        """
        samples, sample_rate_hz = self._resolve_input(signal, sample_rate_hz)
        segment_length = self._segment_length(samples, sample_rate_hz)
        k_lo, k_hi = band_bin_range(
            segment_length, sample_rate_hz, f_center_hz, half_width_hz
        )
        freqs, psd_v2 = band_welch_psd(
            samples, sample_rate_hz, segment_length, k_lo, k_hi
        )
        psd_w = psd_v2 / self.impedance
        psd_w = psd_w + self._noise_psd_band(
            segment_length, sample_rate_hz, k_lo, k_hi, rng
        )
        return Spectrum(freqs, psd_w, self.rbw_hz)

    def _resolve_input(
        self,
        signal: SynthesizedSignal | np.ndarray,
        sample_rate_hz: float | None,
    ) -> tuple[np.ndarray, float]:
        if isinstance(signal, SynthesizedSignal):
            return signal.samples, signal.sample_rate_hz
        samples = np.asarray(signal, dtype=np.float64)
        if sample_rate_hz is None:
            raise MeasurementError("sample_rate_hz is required for raw sample input")
        return samples, sample_rate_hz

    def _segment_length(self, samples: np.ndarray, sample_rate_hz: float) -> int:
        segment_length = int(round(sample_rate_hz / self.rbw_hz))
        num_samples = np.atleast_2d(samples).shape[-1]
        if segment_length > num_samples:
            raise MeasurementError(
                f"RBW {self.rbw_hz} Hz needs {segment_length} samples "
                f"({segment_length / sample_rate_hz:.3f} s) but only "
                f"{num_samples} were captured"
            )
        return segment_length

    def _noise_psd(self, freqs: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """Per-bin noise PSD contribution (W/Hz)."""
        if self.environment is None:
            return np.zeros_like(freqs)
        floor = self.environment.total_floor_w_per_hz
        if rng is not None:
            noise = floor * rng.chisquare(2, size=freqs.shape) / 2.0
        else:
            noise = np.full_like(freqs, floor)
        if len(freqs) > 1:
            df = float(freqs[1] - freqs[0])
            for interferer in self.environment.interferers:
                low = interferer.frequency_hz - interferer.bandwidth_hz / 2.0
                high = interferer.frequency_hz + interferer.bandwidth_hz / 2.0
                mask = (freqs >= low) & (freqs <= high)
                bins = int(mask.sum())
                if bins:
                    noise[mask] += interferer.power_w / (bins * df)
        return noise

    def _noise_psd_band(
        self,
        segment_length: int,
        sample_rate_hz: float,
        k_lo: int,
        k_hi: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Band slice of :meth:`_noise_psd`, bit-identical per bin.

        The floor realization is drawn for the *full* sweep grid with
        the exact call the reference path makes (same distribution,
        same shape, so the generator state advances identically) and
        sliced; interferer PSD contributions divide by their full-grid
        bin counts, reconstructed arithmetically via the same boundary
        comparisons the reference masks apply.
        """
        num_bins = k_hi - k_lo + 1
        if self.environment is None:
            return np.zeros(num_bins)
        floor = self.environment.total_floor_w_per_hz
        grid_size = segment_length // 2 + 1
        if rng is not None:
            noise = floor * rng.chisquare(2, size=(grid_size,)) / 2.0
            noise = noise[k_lo : k_hi + 1].copy()
        else:
            noise = np.full(num_bins, floor)
        if grid_size > 1:
            bin_width = rfft_bin_width(segment_length, sample_rate_hz)
            # The reference path's df comes from freqs[1] - freqs[0]
            # with freqs[0] exactly 0.0, so it equals the bin width.
            df = bin_width
            top_bin = grid_size - 1
            for interferer in self.environment.interferers:
                low = interferer.frequency_hz - interferer.bandwidth_hz / 2.0
                high = interferer.frequency_hz + interferer.bandwidth_hz / 2.0
                bounds = _comparison_bin_range(low, high, bin_width, top_bin)
                if bounds is None:
                    continue
                first, last = bounds
                bins = last - first + 1
                overlap_lo = max(first, k_lo)
                overlap_hi = min(last, k_hi)
                if overlap_lo <= overlap_hi:
                    noise[overlap_lo - k_lo : overlap_hi - k_lo + 1] += (
                        interferer.power_w / (bins * df)
                    )
        return noise
