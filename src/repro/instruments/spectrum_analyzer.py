"""Spectrum-analyzer model (the paper's Agilent MXA N9020A stand-in).

The analyzer turns voltage samples into a W/Hz spectrum at a chosen
resolution bandwidth, adds its own noise floor (and whatever external
interference the environment contains), and integrates band power — the
exact signal path Section IV describes: "the spectrum around the
alternation frequency was recorded with a resolution bandwidth of 1 Hz
... the measured value we use is the total received signal power in the
frequency band from 1 kHz below to 1 kHz above the alternation
frequency."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.em.environment import NoiseEnvironment
from repro.em.synthesis import SynthesizedSignal
from repro.instruments.signal_processing import band_power, peak_frequency, welch_psd
from repro.units import REFERENCE_IMPEDANCE


@dataclass
class Spectrum:
    """A recorded spectrum: frequencies (Hz) and PSD (W/Hz)."""

    freqs_hz: np.ndarray
    psd_w_per_hz: np.ndarray
    rbw_hz: float

    def __post_init__(self) -> None:
        self.freqs_hz = np.asarray(self.freqs_hz, dtype=np.float64)
        self.psd_w_per_hz = np.asarray(self.psd_w_per_hz, dtype=np.float64)
        if self.freqs_hz.shape != self.psd_w_per_hz.shape:
            raise MeasurementError("spectrum frequency and PSD arrays differ in shape")

    def band_power_w(self, f_center_hz: float, half_width_hz: float) -> float:
        """Total power (W) in ``f_center +/- half_width``."""
        return band_power(self.freqs_hz, self.psd_w_per_hz, f_center_hz, half_width_hz)

    def peak_hz(self, f_low_hz: float | None = None, f_high_hz: float | None = None) -> float:
        """Frequency of the strongest bin, optionally within a range."""
        return peak_frequency(self.freqs_hz, self.psd_w_per_hz, f_low_hz, f_high_hz)

    def slice(self, f_low_hz: float, f_high_hz: float) -> "Spectrum":
        """Sub-spectrum covering ``[f_low, f_high]`` (for plots/reports)."""
        mask = (self.freqs_hz >= f_low_hz) & (self.freqs_hz <= f_high_hz)
        if not np.any(mask):
            raise MeasurementError(
                f"slice [{f_low_hz}, {f_high_hz}] Hz is outside the recorded span"
            )
        return Spectrum(self.freqs_hz[mask], self.psd_w_per_hz[mask], self.rbw_hz)


@dataclass
class SpectrumAnalyzer:
    """Welch-based spectrum analyzer with an additive noise floor.

    Attributes
    ----------
    rbw_hz:
        Resolution bandwidth.  Requires at least ``1/rbw`` seconds of
        signal.
    environment:
        Noise environment whose floor and interferers are added to every
        sweep.  ``None`` measures noiselessly (useful in unit tests).
    impedance:
        Input impedance used to convert V^2/Hz to W/Hz.
    """

    rbw_hz: float = 1.0
    environment: NoiseEnvironment | None = None
    impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.rbw_hz <= 0:
            raise MeasurementError(f"resolution bandwidth must be positive, got {self.rbw_hz}")
        if self.impedance <= 0:
            raise MeasurementError(f"impedance must be positive, got {self.impedance}")

    def measure(
        self,
        signal: SynthesizedSignal | np.ndarray,
        sample_rate_hz: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> Spectrum:
        """Record one spectrum sweep.

        Parameters
        ----------
        signal:
            A :class:`~repro.em.synthesis.SynthesizedSignal`, or raw
            voltage samples (1-D, or 2-D mode-stacked) with
            ``sample_rate_hz`` supplied.
        rng:
            Randomness for the noise-floor realization; without it the
            expected (mean) noise PSD is added, making the sweep
            deterministic.
        """
        if isinstance(signal, SynthesizedSignal):
            samples = signal.samples
            sample_rate_hz = signal.sample_rate_hz
        else:
            samples = np.asarray(signal, dtype=np.float64)
            if sample_rate_hz is None:
                raise MeasurementError("sample_rate_hz is required for raw sample input")

        segment_length = int(round(sample_rate_hz / self.rbw_hz))
        num_samples = np.atleast_2d(samples).shape[-1]
        if segment_length > num_samples:
            raise MeasurementError(
                f"RBW {self.rbw_hz} Hz needs {segment_length} samples "
                f"({segment_length / sample_rate_hz:.3f} s) but only "
                f"{num_samples} were captured"
            )
        freqs, psd_v2 = welch_psd(samples, sample_rate_hz, segment_length)
        psd_w = psd_v2 / self.impedance
        psd_w = psd_w + self._noise_psd(freqs, rng)
        return Spectrum(freqs, psd_w, self.rbw_hz)

    def _noise_psd(self, freqs: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """Per-bin noise PSD contribution (W/Hz)."""
        if self.environment is None:
            return np.zeros_like(freqs)
        floor = self.environment.total_floor_w_per_hz
        if rng is not None:
            noise = floor * rng.chisquare(2, size=freqs.shape) / 2.0
        else:
            noise = np.full_like(freqs, floor)
        if len(freqs) > 1:
            df = float(freqs[1] - freqs[0])
            for interferer in self.environment.interferers:
                low = interferer.frequency_hz - interferer.bandwidth_hz / 2.0
                high = interferer.frequency_hz + interferer.bandwidth_hz / 2.0
                mask = (freqs >= low) & (freqs <= high)
                bins = int(mask.sum())
                if bins:
                    noise[mask] += interferer.power_w / (bins * df)
        return noise
