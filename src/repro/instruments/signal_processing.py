"""Spectral-estimation helpers shared by the instrument models.

Everything works on voltage samples and produces one-sided power
spectral densities in V^2/Hz; the instrument models convert to W/Hz at
their reference impedance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


def hann_window(length: int) -> np.ndarray:
    """Hann window of ``length`` samples."""
    if length <= 0:
        raise MeasurementError(f"window length must be positive, got {length}")
    return np.hanning(length)


def periodogram_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    window: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided windowed periodogram PSD in V^2/Hz.

    Accepts 1-D samples or 2-D ``(num_modes, num_samples)``; mode PSDs
    add (incoherent carriers).

    Returns
    -------
    (freqs, psd):
        Frequencies in Hz and PSD in V^2/Hz, both length ``N//2 + 1``.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    num_samples = samples.shape[-1]
    if num_samples < 2:
        raise MeasurementError(f"need >= 2 samples for a PSD, got {num_samples}")
    if sample_rate_hz <= 0:
        raise MeasurementError(f"sample rate must be positive, got {sample_rate_hz}")
    if window is None:
        window = hann_window(num_samples)
    if window.shape != (num_samples,):
        raise MeasurementError(
            f"window length {window.shape} does not match samples ({num_samples})"
        )
    # Remove per-mode DC so window leakage from the (large) DC level
    # does not pollute the measurement band.
    samples = samples - samples.mean(axis=-1, keepdims=True)
    scale = 1.0 / (sample_rate_hz * np.sum(window**2))
    spectrum = np.fft.rfft(samples * window, axis=-1)
    psd = (np.abs(spectrum) ** 2).sum(axis=0) * scale
    # One-sided correction: double everything except DC (and Nyquist for
    # even lengths).
    psd[1:] *= 2.0
    if num_samples % 2 == 0:
        psd[-1] /= 2.0
    freqs = np.fft.rfftfreq(num_samples, d=1.0 / sample_rate_hz)
    return freqs, psd


def welch_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    segment_length: int,
    overlap: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Welch-averaged PSD with Hann windows.

    ``segment_length`` sets the resolution bandwidth (RBW ~= fs /
    segment_length for a Hann window, up to a shape factor of ~1.5).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    num_samples = samples.shape[-1]
    if segment_length < 2:
        raise MeasurementError(f"segment length must be >= 2, got {segment_length}")
    if segment_length > num_samples:
        raise MeasurementError(
            f"segment length {segment_length} exceeds signal length {num_samples}"
        )
    if not 0.0 <= overlap < 1.0:
        raise MeasurementError(f"overlap must be in [0, 1), got {overlap}")
    step = max(int(segment_length * (1.0 - overlap)), 1)
    window = hann_window(segment_length)
    accumulated: np.ndarray | None = None
    count = 0
    for start in range(0, num_samples - segment_length + 1, step):
        segment = samples[:, start : start + segment_length]
        _freqs, psd = periodogram_psd(segment, sample_rate_hz, window=window)
        accumulated = psd if accumulated is None else accumulated + psd
        count += 1
    assert accumulated is not None  # guaranteed by the length checks
    freqs = np.fft.rfftfreq(segment_length, d=1.0 / sample_rate_hz)
    return freqs, accumulated / count


def band_power(
    freqs: np.ndarray,
    psd: np.ndarray,
    f_center_hz: float,
    half_width_hz: float,
) -> float:
    """Integrate a PSD over ``f_center +/- half_width`` (V^2 or W).

    Raises
    ------
    MeasurementError
        If the band does not overlap the PSD's frequency range.
    """
    freqs = np.asarray(freqs)
    psd = np.asarray(psd)
    if freqs.shape != psd.shape:
        raise MeasurementError(f"freqs {freqs.shape} and psd {psd.shape} differ in shape")
    if half_width_hz <= 0:
        raise MeasurementError(f"band half-width must be positive, got {half_width_hz}")
    mask = (freqs >= f_center_hz - half_width_hz) & (freqs <= f_center_hz + half_width_hz)
    if not np.any(mask):
        raise MeasurementError(
            f"band {f_center_hz} +/- {half_width_hz} Hz lies outside the PSD range "
            f"[{freqs[0]}, {freqs[-1]}] Hz"
        )
    df = float(freqs[1] - freqs[0]) if len(freqs) > 1 else 1.0
    return float(psd[mask].sum() * df)


def peak_frequency(
    freqs: np.ndarray,
    psd: np.ndarray,
    f_low_hz: float | None = None,
    f_high_hz: float | None = None,
) -> float:
    """Frequency of the strongest PSD bin, optionally within a range."""
    freqs = np.asarray(freqs)
    psd = np.asarray(psd)
    mask = np.ones_like(freqs, dtype=bool)
    if f_low_hz is not None:
        mask &= freqs >= f_low_hz
    if f_high_hz is not None:
        mask &= freqs <= f_high_hz
    if not np.any(mask):
        raise MeasurementError("requested peak-search range contains no PSD bins")
    selected = np.where(mask)[0]
    return float(freqs[selected[np.argmax(psd[selected])]])
