"""Spectral-estimation helpers shared by the instrument models.

Everything works on voltage samples and produces one-sided power
spectral densities in V^2/Hz; the instrument models convert to W/Hz at
their reference impedance.

Two estimator families live here:

* the **full-spectrum** reference estimators (:func:`periodogram_psd`,
  :func:`welch_psd`) — a windowed rfft over all ``N//2 + 1`` bins; and
* the **band-limited** estimators (:func:`band_periodogram_psd`,
  :func:`band_welch_psd`) built on :class:`ZoomBandPlan`, which compute
  only the bins covering a measurement band.  A SAVAT sweep integrates
  a +/-1 kHz band out of a ~1.3 M-bin spectrum, so evaluating the ~2000
  interesting bins directly is orders of magnitude cheaper than the
  full transform — especially since the capture length ``N`` carries a
  large prime factor that pushes ``numpy`` into its Bluestein rfft.

The band estimators reproduce the reference bins to better than 1e-12
relative (they are the same mathematical quantity, evaluated through an
exactly phase-reduced chirp-Z transform instead of an FFT), which is
how the spectrum-analyzer fast path can stand in for the reference
analyzer within the pipeline's 1e-9 agreement budget.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


def hann_window(length: int) -> np.ndarray:
    """Hann window of ``length`` samples."""
    if length <= 0:
        raise MeasurementError(f"window length must be positive, got {length}")
    return np.hanning(length)


def periodogram_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    window: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided windowed periodogram PSD in V^2/Hz.

    Accepts 1-D samples or 2-D ``(num_modes, num_samples)``; mode PSDs
    add (incoherent carriers).

    Returns
    -------
    (freqs, psd):
        Frequencies in Hz and PSD in V^2/Hz, both length ``N//2 + 1``.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    num_samples = samples.shape[-1]
    if num_samples < 2:
        raise MeasurementError(f"need >= 2 samples for a PSD, got {num_samples}")
    if sample_rate_hz <= 0:
        raise MeasurementError(f"sample rate must be positive, got {sample_rate_hz}")
    if window is None:
        window = hann_window(num_samples)
    if window.shape != (num_samples,):
        raise MeasurementError(
            f"window length {window.shape} does not match samples ({num_samples})"
        )
    # Remove per-mode DC so window leakage from the (large) DC level
    # does not pollute the measurement band.
    samples = samples - samples.mean(axis=-1, keepdims=True)
    scale = 1.0 / (sample_rate_hz * np.sum(window**2))
    spectrum = np.fft.rfft(samples * window, axis=-1)
    psd = (np.abs(spectrum) ** 2).sum(axis=0) * scale
    # One-sided correction: double everything except DC (and Nyquist for
    # even lengths).
    psd[1:] *= 2.0
    if num_samples % 2 == 0:
        psd[-1] /= 2.0
    freqs = np.fft.rfftfreq(num_samples, d=1.0 / sample_rate_hz)
    return freqs, psd


def welch_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    segment_length: int,
    overlap: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Welch-averaged PSD with Hann windows.

    ``segment_length`` sets the resolution bandwidth (RBW ~= fs /
    segment_length for a Hann window, up to a shape factor of ~1.5).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    num_samples = samples.shape[-1]
    if segment_length < 2:
        raise MeasurementError(f"segment length must be >= 2, got {segment_length}")
    if segment_length > num_samples:
        raise MeasurementError(
            f"segment length {segment_length} exceeds signal length {num_samples}"
        )
    if not 0.0 <= overlap < 1.0:
        raise MeasurementError(f"overlap must be in [0, 1), got {overlap}")
    step = max(int(segment_length * (1.0 - overlap)), 1)
    window = hann_window(segment_length)
    accumulated: np.ndarray | None = None
    count = 0
    for start in range(0, num_samples - segment_length + 1, step):
        segment = samples[:, start : start + segment_length]
        _freqs, psd = periodogram_psd(segment, sample_rate_hz, window=window)
        accumulated = psd if accumulated is None else accumulated + psd
        count += 1
    assert accumulated is not None  # guaranteed by the length checks
    freqs = np.fft.rfftfreq(segment_length, d=1.0 / sample_rate_hz)
    return freqs, accumulated / count


def band_power(
    freqs: np.ndarray,
    psd: np.ndarray,
    f_center_hz: float,
    half_width_hz: float,
) -> float:
    """Integrate a PSD over ``f_center +/- half_width`` (V^2 or W).

    Raises
    ------
    MeasurementError
        If the band does not overlap the PSD's frequency range.
    """
    freqs = np.asarray(freqs)
    psd = np.asarray(psd)
    if freqs.shape != psd.shape:
        raise MeasurementError(f"freqs {freqs.shape} and psd {psd.shape} differ in shape")
    if half_width_hz <= 0:
        raise MeasurementError(f"band half-width must be positive, got {half_width_hz}")
    mask = (freqs >= f_center_hz - half_width_hz) & (freqs <= f_center_hz + half_width_hz)
    if not np.any(mask):
        raise MeasurementError(
            f"band {f_center_hz} +/- {half_width_hz} Hz lies outside the PSD range "
            f"[{freqs[0]}, {freqs[-1]}] Hz"
        )
    df = float(freqs[1] - freqs[0]) if len(freqs) > 1 else 1.0
    return float(psd[mask].sum() * df)


# ----------------------------------------------------------------------
# Band-limited estimation
# ----------------------------------------------------------------------
#: Cached Hann windows and their energy (sum of squares), keyed by
#: length.  A campaign evaluates the same multi-megasample window for
#: every repetition; rebuilding it costs more than the band transform.
_HANN_CACHE: dict[int, tuple[np.ndarray, float]] = {}
_HANN_CACHE_SIZE = 4

#: Shared zero-padded sample workspaces for the band estimators, keyed
#: by (modes, padded_length).  The tail beyond the signal stays zero;
#: only the signal prefix is rewritten per call.
_WORKSPACE_CACHE: dict[tuple[int, int], np.ndarray] = {}
_WORKSPACE_CACHE_SIZE = 2


def _cached_hann(length: int) -> tuple[np.ndarray, float]:
    """A read-only Hann window and its sum of squares, cached."""
    cached = _HANN_CACHE.get(length)
    if cached is None:
        window = hann_window(length)
        window.setflags(write=False)
        cached = (window, float(np.sum(window**2)))
        if len(_HANN_CACHE) >= _HANN_CACHE_SIZE:
            _HANN_CACHE.pop(next(iter(_HANN_CACHE)))
        _HANN_CACHE[length] = cached
    return cached


def _workspace(modes: int, padded_length: int) -> np.ndarray:
    """A zero-initialized reusable ``(modes, padded_length)`` buffer."""
    key = (modes, padded_length)
    buffer = _WORKSPACE_CACHE.get(key)
    if buffer is None:
        if len(_WORKSPACE_CACHE) >= _WORKSPACE_CACHE_SIZE:
            _WORKSPACE_CACHE.pop(next(iter(_WORKSPACE_CACHE)))
        buffer = np.zeros(key)
        _WORKSPACE_CACHE[key] = buffer
    return buffer


def rfft_bin_width(num_samples: int, sample_rate_hz: float) -> float:
    """Bin spacing of ``np.fft.rfftfreq(num_samples, d=1/sample_rate_hz)``.

    Computed with the exact floating-point expression ``rfftfreq`` uses
    (``1.0 / (n * d)`` with ``d = 1.0 / fs``), so grids rebuilt from
    this value are bit-identical to the reference grid.
    """
    if num_samples <= 0:
        raise MeasurementError(f"num_samples must be positive, got {num_samples}")
    if sample_rate_hz <= 0:
        raise MeasurementError(f"sample rate must be positive, got {sample_rate_hz}")
    return 1.0 / (num_samples * (1.0 / sample_rate_hz))


def _comparison_bin_range(
    low_hz: float, high_hz: float, bin_width: float, top_bin: int
) -> tuple[int, int] | None:
    """Inclusive rfft-bin range whose frequencies fall in ``[low, high]``.

    Bin ``k``'s frequency is evaluated as ``k * bin_width`` — the same
    product :func:`numpy.fft.rfftfreq` forms — and the boundaries use
    the same ``>=`` / ``<=`` comparisons as the boolean masks in
    :func:`band_power` and the analyzer's interferer model, so the range
    selects exactly the bins those masks would.  Returns ``None`` when
    no bin lands inside the interval.
    """
    if high_hz < low_hz:
        return None
    # Seed with an arithmetic guess, then walk to the exact comparison
    # boundary (the guess is within a couple of ulp-induced bins).
    k_lo = int(np.ceil(low_hz / bin_width)) if low_hz > 0 else 0
    k_lo = min(max(k_lo, 0), top_bin + 1)
    while k_lo > 0 and (k_lo - 1) * bin_width >= low_hz:
        k_lo -= 1
    while k_lo <= top_bin and k_lo * bin_width < low_hz:
        k_lo += 1
    k_hi = int(np.floor(high_hz / bin_width)) if high_hz > 0 else 0
    k_hi = min(max(k_hi, -1), top_bin)
    while k_hi < top_bin and (k_hi + 1) * bin_width <= high_hz:
        k_hi += 1
    while k_hi >= 0 and k_hi * bin_width > high_hz:
        k_hi -= 1
    if k_lo > k_hi:
        return None
    return k_lo, k_hi


def band_bin_range(
    num_samples: int,
    sample_rate_hz: float,
    f_center_hz: float,
    half_width_hz: float,
) -> tuple[int, int]:
    """Inclusive rfft-bin range covering ``f_center +/- half_width``.

    The boundaries are computed with the identical floating-point
    expressions (``f_center_hz - half_width_hz`` etc.) and comparisons
    that :func:`band_power` applies to the full ``rfftfreq`` grid, so
    slicing ``[k_lo : k_hi + 1]`` out of a full spectrum selects exactly
    the bins ``band_power`` would integrate.

    Raises
    ------
    MeasurementError
        If the band does not overlap the spectrum's frequency range
        (mirroring :func:`band_power`).
    """
    if half_width_hz <= 0:
        raise MeasurementError(f"band half-width must be positive, got {half_width_hz}")
    bin_width = rfft_bin_width(num_samples, sample_rate_hz)
    top_bin = num_samples // 2
    bounds = _comparison_bin_range(
        f_center_hz - half_width_hz, f_center_hz + half_width_hz, bin_width, top_bin
    )
    if bounds is None:
        raise MeasurementError(
            f"band {f_center_hz} +/- {half_width_hz} Hz lies outside the PSD range "
            f"[0.0, {top_bin * bin_width}] Hz"
        )
    return bounds


def _fast_fft_length(target: int) -> int:
    """Smallest 5-smooth length >= ``target`` (pocketfft's sweet spot)."""
    if target <= 1:
        return 1
    bound = 1
    while bound < target:
        bound *= 2
    best = bound
    power5 = 1
    while power5 <= bound:
        power35 = power5
        while power35 <= bound:
            length = power35
            while length < target:
                length *= 2
            best = min(best, length)
            power35 *= 3
        power5 *= 5
    return best


class ZoomBandPlan:
    """Precomputed band-limited DFT of real signals (zoom transform).

    Evaluates ``X[k] = sum_t x[t] * exp(-2j*pi*k*t/n)`` for the
    contiguous bin range ``k_lo..k_hi`` only.  The signal is split into
    blocks of ``B`` samples; the per-bin phase inside a block is
    factored as a fixed heterodyne at the band-center bin times a
    low-order Taylor polynomial in the bin offset, so the per-sample
    work collapses to two real matrix products (the block *moments*).
    The across-block phases form a geometric progression per bin, which
    a Bluestein chirp-Z transform evaluates with three small
    power-of-smooth FFTs.  All phase arguments are reduced modulo the
    period with integer arithmetic before entering ``exp``, keeping the
    result within ~1e-13 of the reference rfft bins even at bin indices
    in the hundreds of thousands.

    The plan depends only on ``(num_samples, k_lo, k_hi)`` and is
    reusable across calls and across stacked-mode inputs; building one
    costs milliseconds, applying it to a ``(modes, n)`` stack costs
    ``O(n * order)`` plus the small CZT FFTs instead of a full-length
    transform.
    """

    #: Candidate block sizes, largest first (larger blocks shift work
    #: into the real matrix product, which is the cheapest path, and
    #: shrink the across-block CZT convolution).
    _BLOCK_CANDIDATES = (256, 128, 64, 32, 16, 8, 4, 2, 1)

    #: Taylor truncation target for the within-block phase expansion;
    #: comfortably below the band path's 1e-9 agreement budget.
    _TRUNCATION = 1e-16

    def __init__(self, num_samples: int, k_lo: int, k_hi: int) -> None:
        if num_samples < 1:
            raise MeasurementError(f"need >= 1 sample, got {num_samples}")
        if not 0 <= k_lo <= k_hi <= num_samples // 2:
            raise MeasurementError(
                f"bin range [{k_lo}, {k_hi}] is invalid for {num_samples} samples"
            )
        n = int(num_samples)
        self.num_samples = n
        self.k_lo = int(k_lo)
        self.k_hi = int(k_hi)
        self.num_bins = self.k_hi - self.k_lo + 1
        self._freqs_cache: dict[float, np.ndarray] = {}
        center = (self.k_lo + self.k_hi) // 2
        self.center_bin = center
        offset_max = max(center - self.k_lo, self.k_hi - center, 1)

        # Block size: largest candidate whose worst-case within-block
        # Taylor angle stays small enough for a low-order expansion.
        for block in self._BLOCK_CANDIDATES:
            # Worst-case within-block Taylor angle: 2*pi * offset_max *
            # (block-1)/2 / n; zero for single-sample blocks (the
            # expansion is then exact at order 0 — a plain chirp-Z).
            theta = np.pi * (block - 1) * offset_max / n
            if theta <= 0.4 or block == 1:
                break
        order = 0
        term = 1.0
        while order < 18:
            term = term * theta / (order + 1)
            if term < self._TRUNCATION:
                break
            order += 1
        self.block = block
        self.order = order

        num_blocks = -(-n // block)
        self.num_blocks = num_blocks
        m = self.num_bins

        # Within-block heterodyne x Taylor moment weights, split into
        # real and imaginary parts so the moment step runs as two real
        # matrix products on the (real) input.
        s = np.arange(block, dtype=np.int64)
        s_center = (block - 1) / 2.0
        hetero = np.exp(-2j * np.pi * ((center * s) % n) / n)
        powers = np.empty((block, order + 1))
        powers[:, 0] = 1.0
        for d in range(1, order + 1):
            powers[:, d] = powers[:, d - 1] * (s - s_center) / d
        weights = hetero[:, None] * powers
        self._weights_real = np.ascontiguousarray(weights.real)
        self._weights_imag = np.ascontiguousarray(weights.imag)

        # Bluestein chirp-Z across blocks: phases reduced with integer
        # arithmetic (the raw arguments reach ~1e11 and would otherwise
        # cost ~5 significant digits to pi-reduction).
        u = np.arange(num_blocks, dtype=np.int64)
        start_phase = np.exp(-2j * np.pi * ((self.k_lo * block * u) % n) / n)
        chirp_u = np.exp(-1j * np.pi * ((block * u * u) % (2 * n)) / n)
        self._chirp_in = start_phase * chirp_u

        fft_length = _fast_fft_length(num_blocks + m - 1)
        self._fft_length = fft_length
        j = np.arange(max(num_blocks, m), dtype=np.int64)
        inverse_chirp = np.exp(1j * np.pi * ((block * j * j) % (2 * n)) / n)
        kernel = np.zeros(fft_length, dtype=np.complex128)
        kernel[:m] = inverse_chirp[:m]
        if num_blocks > 1:
            kernel[fft_length - (num_blocks - 1) :] = inverse_chirp[1:num_blocks][::-1]
        self._kernel_fft = np.fft.fft(kernel)

        # Per-bin post factors: CZT output chirp, Taylor coefficients in
        # the bin offset, and the block-center phase shift.
        bins = np.arange(m, dtype=np.int64)
        out_chirp = np.exp(-1j * np.pi * ((block * bins * bins) % (2 * n)) / n)
        delta = (self.k_lo + bins) - center
        coefficients = (-2j * np.pi * delta / n) ** np.arange(order + 1)[:, None]
        center_shift = np.exp(-2j * np.pi * delta * s_center / n)
        self._post = coefficients * (out_chirp * center_shift)[None, :]

    @property
    def bins(self) -> np.ndarray:
        """The absolute rfft bin indices this plan evaluates."""
        return np.arange(self.k_lo, self.k_hi + 1)

    @property
    def padded_length(self) -> int:
        """Sample count after zero-padding to a whole number of blocks."""
        return self.num_blocks * self.block

    def frequencies(self, sample_rate_hz: float) -> np.ndarray:
        """The (cached, read-only) frequency grid of this plan's bins."""
        bin_width = rfft_bin_width(self.num_samples, sample_rate_hz)
        cached = self._freqs_cache.get(bin_width)
        if cached is None:
            cached = np.arange(self.k_lo, self.k_hi + 1) * bin_width
            cached.setflags(write=False)
            if len(self._freqs_cache) >= 4:
                self._freqs_cache.pop(next(iter(self._freqs_cache)))
            self._freqs_cache[bin_width] = cached
        return cached

    def transform(self, samples: np.ndarray) -> np.ndarray:
        """Band DFT bins of 1-D or ``(modes, n)`` real samples.

        Returns complex values matching ``np.fft.rfft(samples)[k_lo :
        k_hi + 1]`` to ~1e-13 relative.
        """
        x = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        modes = x.shape[0]
        if x.shape[-1] != self.num_samples:
            raise MeasurementError(
                f"plan built for {self.num_samples} samples, got {x.shape[-1]}"
            )
        if self.padded_length == self.num_samples:
            blocks = x.reshape(modes, self.num_blocks, self.block)
        else:
            padded = np.zeros((modes, self.padded_length))
            padded[:, : self.num_samples] = x
            blocks = padded.reshape(modes, self.num_blocks, self.block)
        return self.transform_blocks(blocks)

    def transform_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Band DFT of pre-padded ``(modes, num_blocks, block)`` samples.

        The hot-path entry: callers that own a reusable padded workspace
        (see :func:`band_periodogram_psd`) hand its block-reshaped view
        straight in, skipping :meth:`transform`'s copy.
        """
        moments = blocks @ self._weights_real + 1j * (blocks @ self._weights_imag)
        chirped = moments.transpose(0, 2, 1) * self._chirp_in
        spectrum = np.fft.fft(chirped, n=self._fft_length, axis=-1)
        spectrum *= self._kernel_fft
        convolved = np.fft.ifft(spectrum, axis=-1)[..., : self.num_bins]
        return np.einsum("mdk,dk->mk", convolved, self._post)


#: Small process-wide plan cache: campaign cells re-measure the same
#: capture geometry for every repetition and segment.
_PLAN_CACHE: dict[tuple[int, int, int], ZoomBandPlan] = {}
_PLAN_CACHE_SIZE = 8


def get_zoom_plan(num_samples: int, k_lo: int, k_hi: int) -> ZoomBandPlan:
    """A (cached) :class:`ZoomBandPlan` for the given geometry."""
    key = (int(num_samples), int(k_lo), int(k_hi))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = ZoomBandPlan(*key)
        while len(_PLAN_CACHE) >= _PLAN_CACHE_SIZE:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = plan
    return plan


def band_periodogram_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    k_lo: int,
    k_hi: int,
    window: np.ndarray | None = None,
    plan: ZoomBandPlan | None = None,
    window_sumsq: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Band-limited :func:`periodogram_psd`: bins ``k_lo..k_hi`` only.

    Same demeaning, windowing, scaling, and one-sided correction as the
    reference estimator; the returned arrays equal
    ``periodogram_psd(...)[k_lo : k_hi + 1]`` (frequencies bit-exactly,
    PSD to ~1e-12 relative).  The windowed/demeaned signal is staged in
    a shared zero-padded workspace so the hot path performs no
    full-length allocations.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    modes, num_samples = samples.shape[0], samples.shape[-1]
    if num_samples < 2:
        raise MeasurementError(f"need >= 2 samples for a PSD, got {num_samples}")
    if sample_rate_hz <= 0:
        raise MeasurementError(f"sample rate must be positive, got {sample_rate_hz}")
    if window is None:
        window, window_sumsq = _cached_hann(num_samples)
    if window.shape != (num_samples,):
        raise MeasurementError(
            f"window length {window.shape} does not match samples ({num_samples})"
        )
    if window_sumsq is None:
        window_sumsq = np.sum(window**2)
    if plan is None:
        plan = get_zoom_plan(num_samples, k_lo, k_hi)
    elif (plan.num_samples, plan.k_lo, plan.k_hi) != (num_samples, k_lo, k_hi):
        raise MeasurementError("zoom plan does not match the requested geometry")
    workspace = _workspace(modes, plan.padded_length)
    if num_samples < plan.padded_length:
        workspace[:, num_samples:] = 0.0
    staged = workspace[:, :num_samples]
    np.subtract(samples, samples.mean(axis=-1, keepdims=True), out=staged)
    staged *= window
    scale = 1.0 / (sample_rate_hz * window_sumsq)
    spectrum = plan.transform_blocks(
        workspace.reshape(modes, plan.num_blocks, plan.block)
    )
    psd = (np.abs(spectrum) ** 2).sum(axis=0) * scale
    # One-sided correction, identical net factors to the reference path
    # (x2 everywhere except DC and, for even lengths, Nyquist).
    first_doubled = 1 if k_lo == 0 else 0
    psd[first_doubled:] *= 2.0
    if num_samples % 2 == 0 and k_hi == num_samples // 2:
        psd[-1] /= 2.0
    return plan.frequencies(sample_rate_hz), psd


def band_welch_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    segment_length: int,
    k_lo: int,
    k_hi: int,
    overlap: float = 0.5,
    plan: ZoomBandPlan | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Band-limited :func:`welch_psd`: bins ``k_lo..k_hi`` only.

    Segmenting, stepping, per-segment demeaning/windowing, and
    averaging all mirror the reference estimator; the bin range applies
    to the segment-length grid (the RBW grid), exactly as slicing the
    reference output would.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    num_samples = samples.shape[-1]
    if segment_length < 2:
        raise MeasurementError(f"segment length must be >= 2, got {segment_length}")
    if segment_length > num_samples:
        raise MeasurementError(
            f"segment length {segment_length} exceeds signal length {num_samples}"
        )
    if not 0.0 <= overlap < 1.0:
        raise MeasurementError(f"overlap must be in [0, 1), got {overlap}")
    if plan is None:
        plan = get_zoom_plan(segment_length, k_lo, k_hi)
    step = max(int(segment_length * (1.0 - overlap)), 1)
    window, window_sumsq = _cached_hann(segment_length)
    accumulated: np.ndarray | None = None
    count = 0
    freqs: np.ndarray | None = None
    for start in range(0, num_samples - segment_length + 1, step):
        segment = samples[:, start : start + segment_length]
        freqs, psd = band_periodogram_psd(
            segment,
            sample_rate_hz,
            k_lo,
            k_hi,
            window=window,
            plan=plan,
            window_sumsq=window_sumsq,
        )
        accumulated = psd if accumulated is None else accumulated + psd
        count += 1
    assert accumulated is not None and freqs is not None
    return freqs, accumulated / count


def peak_frequency(
    freqs: np.ndarray,
    psd: np.ndarray,
    f_low_hz: float | None = None,
    f_high_hz: float | None = None,
) -> float:
    """Frequency of the strongest PSD bin, optionally within a range."""
    freqs = np.asarray(freqs)
    psd = np.asarray(psd)
    mask = np.ones_like(freqs, dtype=bool)
    if f_low_hz is not None:
        mask &= freqs >= f_low_hz
    if f_high_hz is not None:
        mask &= freqs <= f_high_hz
    if not np.any(mask):
        raise MeasurementError("requested peak-search range contains no PSD bins")
    selected = np.where(mask)[0]
    return float(freqs[selected[np.argmax(psd[selected])]])
