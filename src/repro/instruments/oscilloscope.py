"""Real-time oscilloscope model for the naïve methodology (Figure 2).

The paper's Section III argues that recording the A and B signals
separately and subtracting them fails for three reasons:

1. **Vertical error proportional to the signal.**  "Random measurement
   error that averages 0.5% of the signal's range will make the two
   overall curves have a total difference that is >5 times as large as
   the actual difference."
2. **Trigger/time misalignment** between the two captures.
3. **Limited real-time sample rate** — "even the most sophisticated
   (>$200,000) instruments provide only 10-20 samples per clock cycle",
   and affordable ones far fewer.

This model reproduces all three imperfections so the naïve-method
experiment (:mod:`repro.core.naive`) can quantify them against the
alternation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass
class ScopeCapture:
    """Samples from one oscilloscope acquisition."""

    samples: np.ndarray
    sample_rate_hz: float
    trigger_offset_s: float

    @property
    def times_s(self) -> np.ndarray:
        """Sample timestamps, including the trigger offset."""
        return self.trigger_offset_s + np.arange(len(self.samples)) / self.sample_rate_hz


@dataclass
class Oscilloscope:
    """A band-limited, noisy, trigger-jittered digitizer.

    Attributes
    ----------
    sample_rate_hz:
        Real-time sampling rate.  A 40 GS/s flagship scope gives ~17
        samples per cycle on a 2.4 GHz core; cheaper instruments give
        fewer than one.
    vertical_noise_fraction:
        RMS additive noise as a fraction of the captured signal's range
        (the paper's 0.5% figure is the default).
    trigger_jitter_s:
        RMS mis-trigger between nominally aligned captures.
    """

    sample_rate_hz: float
    vertical_noise_fraction: float = 0.005
    trigger_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise MeasurementError(f"sample rate must be positive, got {self.sample_rate_hz}")
        if self.vertical_noise_fraction < 0:
            raise MeasurementError(
                f"vertical noise fraction must be non-negative, "
                f"got {self.vertical_noise_fraction}"
            )
        if self.trigger_jitter_s < 0:
            raise MeasurementError(
                f"trigger jitter must be non-negative, got {self.trigger_jitter_s}"
            )

    def capture(
        self,
        waveform: np.ndarray,
        waveform_rate_hz: float,
        rng: np.random.Generator,
    ) -> ScopeCapture:
        """Digitize ``waveform`` (sampled at ``waveform_rate_hz``).

        The scope resamples at its own (usually much lower) rate with
        linear interpolation, applies a random trigger offset, and adds
        vertical noise proportional to the signal range.
        """
        waveform = np.asarray(waveform, dtype=np.float64)
        if waveform.ndim != 1 or len(waveform) < 2:
            raise MeasurementError("scope input must be a 1-D waveform with >= 2 samples")
        if waveform_rate_hz <= 0:
            raise MeasurementError(f"waveform rate must be positive, got {waveform_rate_hz}")

        duration = len(waveform) / waveform_rate_hz
        trigger_offset = rng.normal(0.0, self.trigger_jitter_s) if self.trigger_jitter_s else 0.0
        num_samples = max(int(duration * self.sample_rate_hz), 2)
        sample_times = np.arange(num_samples) / self.sample_rate_hz + trigger_offset
        source_times = np.arange(len(waveform)) / waveform_rate_hz
        resampled = np.interp(sample_times, source_times, waveform)

        signal_range = float(waveform.max() - waveform.min())
        if self.vertical_noise_fraction > 0 and signal_range > 0:
            resampled = resampled + rng.normal(
                0.0, self.vertical_noise_fraction * signal_range, size=num_samples
            )
        return ScopeCapture(
            samples=resampled,
            sample_rate_hz=self.sample_rate_hz,
            trigger_offset_s=trigger_offset,
        )
