"""Instrument models: spectrum analyzer, oscilloscope, DSP helpers."""

from repro.instruments.oscilloscope import Oscilloscope, ScopeCapture
from repro.instruments.signal_processing import (
    band_power,
    hann_window,
    peak_frequency,
    periodogram_psd,
    welch_psd,
)
from repro.instruments.spectrum_analyzer import Spectrum, SpectrumAnalyzer

__all__ = [
    "Oscilloscope",
    "ScopeCapture",
    "Spectrum",
    "SpectrumAnalyzer",
    "band_power",
    "hann_window",
    "peak_frequency",
    "periodogram_psd",
    "welch_psd",
]
