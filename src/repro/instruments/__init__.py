"""Instrument models: spectrum analyzer, oscilloscope, DSP helpers."""

from repro.instruments.analyzer_path import (
    band_analyzer_enabled,
    reference_analyzer_enabled,
    use_band_analyzer,
    use_reference_analyzer,
)
from repro.instruments.oscilloscope import Oscilloscope, ScopeCapture
from repro.instruments.signal_processing import (
    ZoomBandPlan,
    band_bin_range,
    band_periodogram_psd,
    band_power,
    band_welch_psd,
    hann_window,
    peak_frequency,
    periodogram_psd,
    rfft_bin_width,
    welch_psd,
)
from repro.instruments.spectrum_analyzer import Spectrum, SpectrumAnalyzer

__all__ = [
    "Oscilloscope",
    "ScopeCapture",
    "Spectrum",
    "SpectrumAnalyzer",
    "ZoomBandPlan",
    "band_analyzer_enabled",
    "band_bin_range",
    "band_periodogram_psd",
    "band_power",
    "band_welch_psd",
    "hann_window",
    "peak_frequency",
    "periodogram_psd",
    "reference_analyzer_enabled",
    "rfft_bin_width",
    "use_band_analyzer",
    "use_reference_analyzer",
    "welch_psd",
]
