"""Square-and-multiply modular exponentiation — the victim workload.

Section III motivates SAVAT with the classic RSA leak: "modular
exponentiation ... results in testing the bits of the secret exponent
one at a time, and multiplying two large numbers whenever such a bit is
1.  This entire multiplication can thus be viewed as the difference in
execution caused by sensitive information."

This module builds that victim on the reproduction's own ISA.  Per key
bit the victim always executes a *square* block; for 1-bits it also
executes a *multiply* block.  The two blocks differ the way real
implementations do: the multiply fetches the precomputed multiplier
from a table in memory (windowed-exponentiation style), so a 1-bit adds
a burst of loads and an extra modular reduction (``idiv``) — precisely
the high-SAVAT, data-dependent behaviours the paper tells programmers
to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.instructions import Instruction, Opcode, imm, mem, reg
from repro.isa.program import Program
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.activity import ActivityTrace

#: Multiply/reduce repetitions per block (stands in for the limbs of a
#: big-number multiplication).
DEFAULT_BLOCK_WORK = 24

#: Base address of the multiplier table the 1-bit path reads.
TABLE_BASE = 0x0800_0000


@dataclass
class VictimExecution:
    """A simulated victim run plus the ground truth an attacker lacks."""

    key_bits: tuple[int, ...]
    trace: ActivityTrace
    block_boundaries: tuple[tuple[int, int, str], ...]
    #: (start_cycle, end_cycle, kind) for every block, kind in
    #: {"square", "multiply"}.

    @property
    def num_bits(self) -> int:
        """Number of key bits processed."""
        return len(self.key_bits)


def square_block_program(work: int) -> Program:
    """One squaring block: limb multiplies plus a modular reduction."""
    instructions: list[Instruction] = []
    for _ in range(work):
        instructions.append(Instruction(Opcode.IMUL, dest=reg("ebx"), src=imm(40503)))
        instructions.append(Instruction(Opcode.ADD, dest=reg("edx"), src=reg("ebx")))
    instructions.extend(_reduction_instructions())
    return Program(instructions, name="square block")


def multiply_block_program(work: int) -> Program:
    """One multiply block: table-fetch of the multiplier, limb
    multiplies, and a modular reduction.

    The table loads are what a windowed implementation does on 1-bits;
    they are the data-dependent memory accesses the paper singles out as
    "the most worrisome situation".
    """
    instructions: list[Instruction] = []
    for _ in range(work):
        instructions.append(Instruction(Opcode.LOAD, dest=reg("eax"), src=mem("esi")))
        instructions.append(Instruction(Opcode.ADD, dest=reg("esi"), src=imm(64)))
        instructions.append(Instruction(Opcode.IMUL, dest=reg("ebx"), src=reg("eax")))
        instructions.append(Instruction(Opcode.ADD, dest=reg("edx"), src=reg("ebx")))
    instructions.extend(_reduction_instructions())
    return Program(instructions, name="multiply block")


def _reduction_instructions() -> list[Instruction]:
    """Modular reduction of the accumulated limbs (an idiv)."""
    return [
        Instruction(Opcode.MOV, dest=reg("eax"), src=reg("edx")),
        Instruction(Opcode.MOV, dest=reg("ebp"), src=imm(65_537)),
        Instruction(Opcode.IDIV, dest=reg("ebp")),
        Instruction(Opcode.MOV, dest=reg("edx"), src=reg("eax")),
    ]


def block_schedule(key_bits: list[int] | tuple[int, ...]) -> list[str]:
    """The square/multiply block sequence a key produces."""
    if not key_bits:
        raise ConfigurationError("key must have at least one bit")
    if any(bit not in (0, 1) for bit in key_bits):
        raise ConfigurationError(f"key bits must be 0/1, got {key_bits!r}")
    schedule: list[str] = []
    for bit in key_bits:
        schedule.append("square")
        if bit:
            schedule.append("multiply")
    return schedule


def simulate_victim(
    machine: CalibratedMachine,
    key_bits: list[int] | tuple[int, ...],
    block_work: int = DEFAULT_BLOCK_WORK,
) -> VictimExecution:
    """Run the victim on the simulated machine, keeping ground truth.

    Blocks execute back to back on one core (cache and register state
    persist, as in a real run); the per-block traces are concatenated so
    the exact block boundaries are known for profiling and scoring.
    """
    schedule = block_schedule(key_bits)
    core = machine.make_core()
    core.registers["ebx"] = 3
    core.registers["edx"] = 1
    core.registers["esi"] = TABLE_BASE

    square = square_block_program(block_work)
    multiply = multiply_block_program(block_work)

    pieces: list[np.ndarray] = []
    boundaries: list[tuple[int, int, str]] = []
    cursor = 0
    for kind in schedule:
        program = square if kind == "square" else multiply
        result = core.run(program, warm_hierarchy=True)
        pieces.append(result.trace.data)
        boundaries.append((cursor, cursor + result.cycles, kind))
        cursor += result.cycles

    trace = ActivityTrace(np.concatenate(pieces, axis=1), machine.spec.clock_hz)
    return VictimExecution(
        key_bits=tuple(key_bits),
        trace=trace,
        block_boundaries=tuple(boundaries),
    )
