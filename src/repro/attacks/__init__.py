"""Attack demonstrations: the Section III RSA leak model, end to end."""

from repro.attacks.distinguisher import (
    AttackResult,
    BlockTemplates,
    observe,
    profile_templates,
    recover_key,
    run_attack,
)
from repro.attacks.modexp import (
    DEFAULT_BLOCK_WORK,
    VictimExecution,
    block_schedule,
    multiply_block_program,
    simulate_victim,
    square_block_program,
)

__all__ = [
    "AttackResult",
    "BlockTemplates",
    "DEFAULT_BLOCK_WORK",
    "VictimExecution",
    "block_schedule",
    "multiply_block_program",
    "observe",
    "profile_templates",
    "recover_key",
    "run_attack",
    "simulate_victim",
    "square_block_program",
]
