"""EM template attack against the square-and-multiply victim.

The attacker's pipeline mirrors a real EM key-extraction attack
(Genkin/Pipman/Tromer, CHES 2014, cited by the paper as [22]):

1. **Profile**: run the victim with a known key on an identical machine
   and learn per-block *templates* — the mean per-mode signal level of
   a square block and of a multiply block.
2. **Capture**: record the target's emanations (the calibrated coupling
   projection of its activity, plus environment noise scaled for the
   observation bandwidth).
3. **Decode**: walk the capture block by block; after each square
   block, classify the next window as "multiply" (bit 1) or "next
   square" (bit 0) by template correlation, advancing by the matched
   block's profiled length.

The attack's success rate falls with antenna distance, because the
template separation is exactly the kind of signal difference SAVAT
quantifies — run ``examples/rsa_attack_demo.py`` to see the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.modexp import (
    DEFAULT_BLOCK_WORK,
    VictimExecution,
    simulate_victim,
)
from repro.errors import ConfigurationError
from repro.machines.calibrated import CalibratedMachine
from repro.units import REFERENCE_IMPEDANCE

#: Envelope samples per block used for feature extraction.
FEATURE_SAMPLES = 8


@dataclass
class BlockTemplates:
    """Profiled per-block signal templates (per-mode mean levels).

    ``multiply_head_level`` is the mean level of the *first*
    ``square_cycles`` of a multiply block — the decoder classifies a
    square-length window after each square block, so it needs the
    multiply's head (the table-load burst), not its whole-block mean.
    """

    square_level: np.ndarray
    multiply_level: np.ndarray
    multiply_head_level: np.ndarray
    square_cycles: int
    multiply_cycles: int

    @property
    def separation(self) -> float:
        """Euclidean distance between the templates — the attacker's
        effective signal, directly SAVAT-like (squared volts)."""
        return float(np.linalg.norm(self.multiply_level - self.square_level))

    @property
    def head_separation(self) -> float:
        """Distance between the decoder's two candidate windows."""
        return float(np.linalg.norm(self.multiply_head_level - self.square_level))


@dataclass
class AttackResult:
    """Outcome of one key-recovery attempt."""

    true_bits: tuple[int, ...]
    recovered_bits: tuple[int, ...]

    @property
    def accuracy(self) -> float:
        """Fraction of key bits recovered correctly."""
        length = min(len(self.true_bits), len(self.recovered_bits))
        if length == 0:
            return 0.0
        matches = sum(
            1 for a, b in zip(self.true_bits[:length], self.recovered_bits[:length]) if a == b
        )
        # Length mismatches are errors too.
        return matches / max(len(self.true_bits), len(self.recovered_bits))

    @property
    def exact(self) -> bool:
        """True if the whole key was recovered."""
        return self.true_bits == self.recovered_bits


def observe(
    machine: CalibratedMachine,
    execution: VictimExecution,
    rng: np.random.Generator | None = None,
    observation_bandwidth_hz: float = 1e6,
) -> np.ndarray:
    """The attacker's capture: per-mode signal plus receiver noise.

    The demodulated per-mode waveform is observed at cycle resolution;
    receiver noise is white with the environment's floor PSD over the
    attacker's observation bandwidth (a wideband capture is far noisier
    per sample than the 1 Hz-RBW spectrum measurement — this is why the
    attack needs whole blocks of difference, not single instructions).
    """
    waveform = machine.coupling.project_trace(execution.trace)
    if rng is None:
        return waveform
    noise_power = machine.environment.total_floor_w_per_hz * observation_bandwidth_hz
    sigma = np.sqrt(noise_power * REFERENCE_IMPEDANCE)
    return waveform + rng.normal(0.0, sigma, size=waveform.shape)


def profile_templates(
    machine: CalibratedMachine,
    block_work: int = DEFAULT_BLOCK_WORK,
) -> BlockTemplates:
    """Learn block templates from a profiling run with a known key."""
    profiling = simulate_victim(machine, [1, 0], block_work)
    waveform = machine.coupling.project_trace(profiling.trace)
    square_levels = []
    multiply_levels = []
    multiply_heads = []
    square_cycles = multiply_cycles = 0
    for start, end, kind in profiling.block_boundaries:
        level = waveform[:, start:end].mean(axis=1)
        if kind == "square":
            square_levels.append(level)
            square_cycles = end - start
        else:
            multiply_levels.append(level)
            multiply_cycles = end - start
    if not square_levels or not multiply_levels:
        raise ConfigurationError("profiling run must contain both block kinds")
    for start, end, kind in profiling.block_boundaries:
        if kind == "multiply":
            head_end = min(start + square_cycles, end)
            multiply_heads.append(waveform[:, start:head_end].mean(axis=1))
    return BlockTemplates(
        square_level=np.mean(square_levels, axis=0),
        multiply_level=np.mean(multiply_levels, axis=0),
        multiply_head_level=np.mean(multiply_heads, axis=0),
        square_cycles=square_cycles,
        multiply_cycles=multiply_cycles,
    )


def _window_level(waveform: np.ndarray, start: int, length: int) -> np.ndarray | None:
    end = start + length
    if end > waveform.shape[1]:
        return None
    return waveform[:, start:end].mean(axis=1)


def recover_key(
    waveform: np.ndarray,
    templates: BlockTemplates,
    max_bits: int = 4096,
) -> tuple[int, ...]:
    """Sequential template decoding of the captured waveform.

    After each square block, the decoder compares the next
    *square-length* window against the square template and the multiply
    block's head template; a multiply match means the current bit is 1
    (and the cursor skips the whole multiply block).
    """
    bits: list[int] = []
    cursor = 0
    total = waveform.shape[1]
    while cursor + templates.square_cycles <= total and len(bits) < max_bits:
        cursor += templates.square_cycles  # consume the mandatory square
        remaining = total - cursor
        if remaining < templates.square_cycles // 2:
            bits.append(0)  # the trace ended right after this square
            break
        window = _window_level(waveform, cursor, templates.square_cycles)
        if window is None:
            window = waveform[:, cursor:].mean(axis=1)
        distance_multiply = float(np.linalg.norm(window - templates.multiply_head_level))
        distance_square = float(np.linalg.norm(window - templates.square_level))
        if distance_multiply < distance_square:
            bits.append(1)
            cursor += templates.multiply_cycles
        else:
            bits.append(0)
    return tuple(bits)


def run_attack(
    machine: CalibratedMachine,
    key_bits: list[int] | tuple[int, ...],
    seed: int = 0,
    block_work: int = DEFAULT_BLOCK_WORK,
    observation_bandwidth_hz: float = 1e6,
) -> AttackResult:
    """End-to-end attack: profile, capture, decode, score."""
    rng = np.random.default_rng(seed)
    templates = profile_templates(machine, block_work)
    execution = simulate_victim(machine, key_bits, block_work)
    capture = observe(machine, execution, rng, observation_bandwidth_hz)
    recovered = recover_key(capture, templates, max_bits=2 * len(key_bits) + 8)
    return AttackResult(true_bits=tuple(key_bits), recovered_bits=recovered)
