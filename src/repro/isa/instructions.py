"""Instruction set model for the SAVAT microbenchmarks.

The paper's measurement kernels (Figure 4) are written in x86 assembly so
that the non-under-test code is identical for every instruction under
test.  This module defines a small, explicit x86-like instruction set
that is rich enough to express those kernels — register ALU operations,
loads/stores with simple addressing, and the loop-control instructions —
while remaining easy to simulate at cycle granularity.

Instructions are plain frozen dataclasses; semantics and timing live in
:mod:`repro.uarch.core` and :mod:`repro.uarch.functional_units` so the ISA
definition stays independent of any particular machine model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AssemblyError

#: Architectural general-purpose register names, in x86 order.
REGISTER_NAMES: tuple[str, ...] = (
    "eax",
    "ebx",
    "ecx",
    "edx",
    "esi",
    "edi",
    "ebp",
    "esp",
)

#: Mask applied to all register arithmetic (32-bit machine).
WORD_MASK = 0xFFFFFFFF


class Opcode(enum.Enum):
    """Operations understood by the simulator.

    The set covers everything the Figure 4 alternation kernel and the
    example workloads need.  ``NOP`` exists so the "no instruction" (NOI)
    event can still occupy a program slot when a placeholder is useful;
    the alternation generator normally omits the slot entirely, exactly
    as the paper does.
    """

    MOV = "mov"  # reg <- reg/imm
    CMOVZ = "cmovz"  # reg <- reg/imm if ZF (branchless select)
    CMOVNZ = "cmovnz"  # reg <- reg/imm if !ZF
    LOAD = "load"  # reg <- [mem]
    STORE = "store"  # [mem] <- reg/imm
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    LEA = "lea"  # reg <- address computation (AGU only, no memory access)
    IMUL = "imul"
    IDIV = "idiv"
    INC = "inc"
    DEC = "dec"
    CMP = "cmp"
    TEST = "test"
    JMP = "jmp"
    JNZ = "jnz"
    JZ = "jz"
    NOP = "nop"
    HALT = "halt"  # simulator-only: stop execution

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Opcodes that read from or write to the data memory hierarchy.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes that transfer control.
BRANCH_OPCODES = frozenset({Opcode.JMP, Opcode.JNZ, Opcode.JZ})

#: Opcodes executed by the simple integer ALU.
ALU_OPCODES = frozenset(
    {
        Opcode.MOV,
        Opcode.CMOVZ,
        Opcode.CMOVNZ,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.INC,
        Opcode.DEC,
        Opcode.CMP,
        Opcode.TEST,
    }
)


@dataclass(frozen=True)
class Register:
    """A named architectural register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in REGISTER_NAMES:
            raise AssemblyError(f"unknown register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Immediate:
    """An immediate (constant) operand, stored as a Python int."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MemoryOperand:
    """An x86-style ``[base + index*scale + displacement]`` address.

    Only the addressing forms the kernels actually use are supported:
    a base register, an optional index register with power-of-two scale,
    and a constant displacement.
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    displacement: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise AssemblyError(f"invalid address scale {self.scale!r}")
        if self.base is None and self.index is None and self.displacement == 0:
            raise AssemblyError("memory operand must have a base, index, or displacement")

    def __str__(self) -> str:
        parts: list[str] = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            part = self.index.name
            if self.scale != 1:
                part += f"*{self.scale}"
            parts.append(part)
        if self.displacement or not parts:
            parts.append(str(self.displacement))
        return "[" + "+".join(parts) + "]"


Operand = Register | Immediate | MemoryOperand


@dataclass(frozen=True)
class Instruction:
    """One instruction: an opcode plus up to two operands and a label.

    ``dest`` is the destination operand (register or memory), ``src`` the
    source.  Branches carry their target label in ``target``.  ``label``
    names the instruction itself so branches can reference it.
    """

    opcode: Opcode
    dest: Operand | None = None
    src: Operand | None = None
    target: str | None = None
    label: str | None = None
    #: Free-form tag used by the measurement code to mark the
    #: instruction under test ("A" or "B") versus surrounding code.
    role: str = ""
    annotations: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.opcode in BRANCH_OPCODES and self.target is None:
            raise AssemblyError(f"{self.opcode} requires a branch target")
        if self.opcode is Opcode.LOAD and not isinstance(self.dest, Register):
            raise AssemblyError("load destination must be a register")
        if self.opcode is Opcode.LOAD and not isinstance(self.src, MemoryOperand):
            raise AssemblyError("load source must be a memory operand")
        if self.opcode is Opcode.STORE and not isinstance(self.dest, MemoryOperand):
            raise AssemblyError("store destination must be a memory operand")

    @property
    def is_memory(self) -> bool:
        """True if this instruction accesses the data memory hierarchy."""
        return self.opcode in MEMORY_OPCODES

    @property
    def is_branch(self) -> bool:
        """True if this instruction may transfer control."""
        return self.opcode in BRANCH_OPCODES

    def __str__(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.opcode in BRANCH_OPCODES:
            return f"{prefix}{self.opcode} {self.target}"
        # Loads and stores render in x86 notation ("mov eax, [esi]") so
        # Program.to_text() output re-assembles.
        mnemonic = "mov" if self.opcode in MEMORY_OPCODES else str(self.opcode)
        operands = ", ".join(str(op) for op in (self.dest, self.src) if op is not None)
        text = f"{prefix}{mnemonic}"
        if operands:
            text += f" {operands}"
        return text


def reg(name: str) -> Register:
    """Shorthand constructor for a :class:`Register` operand."""
    return Register(name)


def imm(value: int) -> Immediate:
    """Shorthand constructor for an :class:`Immediate` operand."""
    return Immediate(int(value))


def mem(
    base: str | None = None,
    index: str | None = None,
    scale: int = 1,
    displacement: int = 0,
) -> MemoryOperand:
    """Shorthand constructor for a :class:`MemoryOperand`."""
    return MemoryOperand(
        base=Register(base) if base is not None else None,
        index=Register(index) if index is not None else None,
        scale=scale,
        displacement=displacement,
    )
