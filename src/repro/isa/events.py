"""The eleven instruction-level events measured in the paper's case study.

Figure 5 of the paper defines the events: loads and stores serviced by
each level of the memory hierarchy (main memory, L2, L1), simple and
complex integer arithmetic, and a "no instruction" placeholder.  An
*event* is more than an opcode — LDM, LDL2 and LDL1 all use the same
``mov eax,[esi]`` instruction but differ in the cache level that services
the access, which the measurement code arranges by sweeping arrays of
different footprints (Section III).

This module encodes each event as the pair (instruction template,
working-set class) so the code generator and the cache hierarchy can
recreate the intended microarchitectural behaviour mechanistically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.instructions import Instruction, Opcode, imm, mem, reg


class Footprint(enum.Enum):
    """Working-set class of a memory event's pointer sweep.

    The alternation kernel sweeps a pointer over an array sized so the
    access stream hits in L1, hits in L2 (missing L1), or misses both
    caches and goes off-chip (Section III, Figure 4 commentary).
    ``NONE`` marks non-memory events, whose pointer-update code is still
    executed (so the surrounding code is identical) but whose test slot
    does not touch memory.
    """

    NONE = "none"
    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


class EventKind(enum.Enum):
    """Coarse category of an event, used by analysis and reporting."""

    LOAD = "load"
    STORE = "store"
    ARITHMETIC = "arithmetic"
    NONE = "none"


@dataclass(frozen=True)
class InstructionEvent:
    """One row of the paper's Figure 5.

    Attributes
    ----------
    name:
        Paper mnemonic (``LDM``, ``STL2``, ``ADD``, ...).
    x86_text:
        The x86 assembly the paper lists for the event (documentation;
        the simulator executes the equivalent :attr:`opcode`).
    description:
        The paper's human-readable description.
    opcode:
        Simulator opcode for the test slot, or ``None`` for NOI.
    footprint:
        Working-set class controlling which cache level services the
        access (``NONE`` for non-memory events).
    kind:
        Coarse category used in analysis.
    """

    name: str
    x86_text: str
    description: str
    opcode: Opcode | None
    footprint: Footprint
    kind: EventKind

    @property
    def is_memory(self) -> bool:
        """True if this event exercises the data memory hierarchy."""
        return self.footprint is not Footprint.NONE

    @property
    def is_store(self) -> bool:
        """True if this event writes to memory."""
        return self.kind is EventKind.STORE

    def test_instruction(self, pointer_register: str = "esi") -> Instruction | None:
        """Build the test-slot instruction for this event.

        Returns ``None`` for NOI — the slot is left empty, exactly as the
        paper leaves line 6/12 of Figure 4 empty.

        Parameters
        ----------
        pointer_register:
            Register holding the sweep pointer for memory events; the
            paper's kernel uses ``esi`` for the A half and ``edi`` for
            the B half.
        """
        if self.opcode is None:
            return None
        if self.is_memory:
            if self.is_store:
                return Instruction(
                    Opcode.STORE,
                    dest=mem(pointer_register),
                    src=imm(0xFFFFFFFF),
                    role="test",
                )
            return Instruction(
                Opcode.LOAD, dest=reg("eax"), src=mem(pointer_register), role="test"
            )
        return Instruction(self.opcode, dest=reg("eax"), src=imm(173), role="test")

    def __str__(self) -> str:
        return self.name


def _make_events() -> tuple[InstructionEvent, ...]:
    """Construct the canonical Figure 5 event list."""
    return (
        InstructionEvent(
            "LDM",
            "mov eax,[esi]",
            "Load from main memory",
            Opcode.LOAD,
            Footprint.MEMORY,
            EventKind.LOAD,
        ),
        InstructionEvent(
            "STM",
            "mov [esi],0xFFFFFFFF",
            "Store to main memory",
            Opcode.STORE,
            Footprint.MEMORY,
            EventKind.STORE,
        ),
        InstructionEvent(
            "LDL2",
            "mov eax,[esi]",
            "Load from L2 cache",
            Opcode.LOAD,
            Footprint.L2,
            EventKind.LOAD,
        ),
        InstructionEvent(
            "STL2",
            "mov [esi],0xFFFFFFFF",
            "Store to L2 cache",
            Opcode.STORE,
            Footprint.L2,
            EventKind.STORE,
        ),
        InstructionEvent(
            "LDL1",
            "mov eax,[esi]",
            "Load from L1 cache",
            Opcode.LOAD,
            Footprint.L1,
            EventKind.LOAD,
        ),
        InstructionEvent(
            "STL1",
            "mov [esi],0xFFFFFFFF",
            "Store to L1 cache",
            Opcode.STORE,
            Footprint.L1,
            EventKind.STORE,
        ),
        InstructionEvent(
            "NOI",
            "",
            "No instruction",
            None,
            Footprint.NONE,
            EventKind.NONE,
        ),
        InstructionEvent(
            "ADD",
            "add eax,173",
            "Add imm to reg",
            Opcode.ADD,
            Footprint.NONE,
            EventKind.ARITHMETIC,
        ),
        InstructionEvent(
            "SUB",
            "sub eax,173",
            "Sub imm from reg",
            Opcode.SUB,
            Footprint.NONE,
            EventKind.ARITHMETIC,
        ),
        InstructionEvent(
            "MUL",
            "imul eax,173",
            "Integer multiplication",
            Opcode.IMUL,
            Footprint.NONE,
            EventKind.ARITHMETIC,
        ),
        InstructionEvent(
            "DIV",
            "idiv eax",
            "Integer division",
            Opcode.IDIV,
            Footprint.NONE,
            EventKind.ARITHMETIC,
        ),
    )


#: The eleven events of Figure 5, in the paper's row/column order.
PAPER_EVENTS: tuple[InstructionEvent, ...] = _make_events()

#: Paper ordering of event names, used by every matrix in the library.
EVENT_ORDER: tuple[str, ...] = tuple(event.name for event in PAPER_EVENTS)

_EVENTS_BY_NAME = {event.name: event for event in PAPER_EVENTS}


def get_event(name: str) -> InstructionEvent:
    """Look up a paper event by its mnemonic (case-insensitive).

    Raises
    ------
    ConfigurationError
        If ``name`` is not one of the eleven Figure 5 mnemonics.
    """
    try:
        return _EVENTS_BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(EVENT_ORDER)
        raise ConfigurationError(f"unknown event {name!r}; known events: {known}") from None


def event_pairs() -> list[tuple[InstructionEvent, InstructionEvent]]:
    """All ordered (A, B) pairings of the eleven events, row-major.

    The paper measures the full ordered matrix — both A/B and B/A — so
    the difference between symmetric entries estimates the error caused
    by placing identical instructions at different program addresses.
    """
    return [(a, b) for a in PAPER_EVENTS for b in PAPER_EVENTS]
