"""Program container: an ordered instruction list with label resolution.

A :class:`Program` is the unit of execution for the simulator.  It owns
its instructions, resolves branch targets to instruction indices once at
construction, and knows how to pretty-print itself as assembly text.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction


@dataclass
class Program:
    """An executable sequence of instructions.

    Parameters
    ----------
    instructions:
        The instruction sequence.  Labels on instructions are collected
        into a label table; duplicate labels are rejected.
    name:
        Optional human-readable name used in reports and exceptions.
    """

    instructions: list[Instruction]
    name: str = "program"
    _labels: dict[str, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.instructions = list(self.instructions)
        for index, instruction in enumerate(self.instructions):
            if instruction.label is None:
                continue
            if instruction.label in self._labels:
                raise AssemblyError(
                    f"duplicate label {instruction.label!r} in program {self.name!r}"
                )
            self._labels[instruction.label] = index
        for instruction in self.instructions:
            if instruction.is_branch and instruction.target not in self._labels:
                raise AssemblyError(
                    f"undefined branch target {instruction.target!r} "
                    f"in program {self.name!r}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def label_index(self, label: str) -> int:
        """Instruction index of ``label``.

        Raises
        ------
        AssemblyError
            If the label is not defined in this program.
        """
        try:
            return self._labels[label]
        except KeyError:
            raise AssemblyError(
                f"label {label!r} not defined in program {self.name!r}"
            ) from None

    @property
    def labels(self) -> dict[str, int]:
        """Copy of the label table (label -> instruction index)."""
        return dict(self._labels)

    def count_role(self, role: str) -> int:
        """Number of instructions tagged with ``role`` (e.g. ``"test"``)."""
        return sum(1 for instruction in self.instructions if instruction.role == role)

    def to_text(self) -> str:
        """Render the program as assembly text, one instruction per line."""
        return "\n".join(str(instruction) for instruction in self.instructions)

    @classmethod
    def concatenate(cls, programs: Iterable["Program"], name: str = "program") -> "Program":
        """Join several programs into one.

        Labels must remain globally unique across the parts; the usual
        pattern is to suffix labels with a per-part tag before joining.
        """
        instructions: list[Instruction] = []
        for program in programs:
            instructions.extend(program.instructions)
        return cls(instructions, name=name)
