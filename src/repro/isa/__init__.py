"""ISA model: instructions, the paper's eleven events, assembler, programs."""

from repro.isa.assembler import assemble, parse_line, parse_operand
from repro.isa.events import (
    EVENT_ORDER,
    EventKind,
    Footprint,
    InstructionEvent,
    PAPER_EVENTS,
    event_pairs,
    get_event,
)
from repro.isa.instructions import (
    ALU_OPCODES,
    BRANCH_OPCODES,
    Immediate,
    Instruction,
    MEMORY_OPCODES,
    MemoryOperand,
    Opcode,
    Operand,
    REGISTER_NAMES,
    Register,
    WORD_MASK,
    imm,
    mem,
    reg,
)
from repro.isa.program import Program

__all__ = [
    "ALU_OPCODES",
    "BRANCH_OPCODES",
    "EVENT_ORDER",
    "EventKind",
    "Footprint",
    "Immediate",
    "Instruction",
    "InstructionEvent",
    "MEMORY_OPCODES",
    "MemoryOperand",
    "Opcode",
    "Operand",
    "PAPER_EVENTS",
    "Program",
    "REGISTER_NAMES",
    "Register",
    "WORD_MASK",
    "assemble",
    "event_pairs",
    "get_event",
    "imm",
    "mem",
    "parse_line",
    "parse_operand",
    "reg",
]
