"""A tiny two-pass assembler for the x86-like subset.

The measurement kernels are built programmatically (see
:mod:`repro.codegen.alternation`), but an assembler keeps tests and
examples close to the notation the paper uses ("``mov eax,[esi]``") and
makes hand-written victim workloads — like the modular-exponentiation
demo — much easier to read.

Syntax
------
* one instruction per line; ``;`` or ``#`` starts a comment
* ``label:`` prefixes (on their own line or before an instruction)
* register operands: ``eax`` ... ``esp``
* immediates: decimal or ``0x`` hexadecimal, optionally negative
* memory operands: ``[base]``, ``[base+disp]``, ``[base+index*scale]``,
  ``[base+index*scale+disp]``
* ``mov`` with a memory source assembles to :data:`Opcode.LOAD`, with a
  memory destination to :data:`Opcode.STORE`
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import (
    Immediate,
    Instruction,
    MemoryOperand,
    Opcode,
    Operand,
    REGISTER_NAMES,
    Register,
)
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^\s*([A-Za-z_][\w.]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^\[(.+)\]$")
_IMM_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|\d+)$")

#: Mnemonics that take zero operands.
_ZERO_OPERAND = {"nop": Opcode.NOP, "halt": Opcode.HALT}

#: Mnemonics that branch to a label.
_BRANCHES = {"jmp": Opcode.JMP, "jnz": Opcode.JNZ, "jz": Opcode.JZ}

#: Two-operand ALU-style mnemonics (destination, source).
_TWO_OPERAND = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "imul": Opcode.IMUL,
    "cmp": Opcode.CMP,
    "test": Opcode.TEST,
    "lea": Opcode.LEA,
}

#: One-operand mnemonics.
_ONE_OPERAND = {"inc": Opcode.INC, "dec": Opcode.DEC, "idiv": Opcode.IDIV}


def _parse_immediate(text: str) -> int:
    match = _IMM_RE.match(text)
    if match is None:
        raise AssemblyError(f"invalid immediate {text!r}")
    return int(text, 0)


def _parse_memory(text: str) -> MemoryOperand:
    inner = _MEM_RE.match(text)
    if inner is None:
        raise AssemblyError(f"invalid memory operand {text!r}")
    base: Register | None = None
    index: Register | None = None
    scale = 1
    displacement = 0
    # Split on '+' while tolerating a leading '-' on the displacement.
    for raw_term in inner.group(1).replace("-", "+-").split("+"):
        term = raw_term.strip()
        if not term:
            continue
        if "*" in term:
            reg_text, _, scale_text = term.partition("*")
            if index is not None:
                raise AssemblyError(f"multiple index registers in {text!r}")
            index = Register(reg_text.strip())
            scale = _parse_immediate(scale_text.strip())
        elif term.lstrip("-") in REGISTER_NAMES:
            if base is None:
                base = Register(term)
            elif index is None:
                index = Register(term)
            else:
                raise AssemblyError(f"too many registers in memory operand {text!r}")
        else:
            displacement += _parse_immediate(term)
    return MemoryOperand(base=base, index=index, scale=scale, displacement=displacement)


def parse_operand(text: str) -> Operand:
    """Parse a single operand: register, immediate, or memory reference."""
    text = text.strip()
    if not text:
        raise AssemblyError("empty operand")
    if text.startswith("["):
        return _parse_memory(text)
    if text in REGISTER_NAMES:
        return Register(text)
    return Immediate(_parse_immediate(text))


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are outside brackets."""
    parts: list[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    return [part.strip() for part in parts]


def parse_line(line: str, label: str | None = None) -> Instruction | None:
    """Assemble one source line into an :class:`Instruction`.

    Returns ``None`` for blank/comment-only lines.  A leading label is
    attached to the produced instruction; a label on an otherwise empty
    line must be handled by the caller (see :func:`assemble`).
    """
    code = line.split(";")[0].split("#")[0].strip()
    if not code:
        return None
    mnemonic, _, rest = code.partition(" ")
    mnemonic = mnemonic.lower()
    operands = _split_operands(rest) if rest.strip() else []

    if mnemonic in _ZERO_OPERAND:
        if operands:
            raise AssemblyError(f"{mnemonic} takes no operands: {line!r}")
        return Instruction(_ZERO_OPERAND[mnemonic], label=label)

    if mnemonic in _BRANCHES:
        if len(operands) != 1:
            raise AssemblyError(f"{mnemonic} takes one label operand: {line!r}")
        return Instruction(_BRANCHES[mnemonic], target=operands[0], label=label)

    if mnemonic in _ONE_OPERAND:
        if len(operands) != 1:
            raise AssemblyError(f"{mnemonic} takes one operand: {line!r}")
        return Instruction(_ONE_OPERAND[mnemonic], dest=parse_operand(operands[0]), label=label)

    if mnemonic in ("cmovz", "cmovnz"):
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes two operands: {line!r}")
        dest = parse_operand(operands[0])
        src_operand = parse_operand(operands[1])
        if isinstance(dest, MemoryOperand) or isinstance(src_operand, MemoryOperand):
            raise AssemblyError(f"{mnemonic} operands must be registers/immediates: {line!r}")
        opcode = Opcode.CMOVZ if mnemonic == "cmovz" else Opcode.CMOVNZ
        return Instruction(opcode, dest=dest, src=src_operand, label=label)

    if mnemonic == "mov":
        if len(operands) != 2:
            raise AssemblyError(f"mov takes two operands: {line!r}")
        dest = parse_operand(operands[0])
        src = parse_operand(operands[1])
        if isinstance(src, MemoryOperand) and isinstance(dest, MemoryOperand):
            raise AssemblyError(f"mov cannot be memory-to-memory: {line!r}")
        if isinstance(src, MemoryOperand):
            return Instruction(Opcode.LOAD, dest=dest, src=src, label=label)
        if isinstance(dest, MemoryOperand):
            return Instruction(Opcode.STORE, dest=dest, src=src, label=label)
        return Instruction(Opcode.MOV, dest=dest, src=src, label=label)

    if mnemonic in _TWO_OPERAND:
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes two operands: {line!r}")
        return Instruction(
            _TWO_OPERAND[mnemonic],
            dest=parse_operand(operands[0]),
            src=parse_operand(operands[1]),
            label=label,
        )

    raise AssemblyError(f"unknown mnemonic {mnemonic!r} in line {line!r}")


def assemble(source: str, name: str = "program") -> Program:
    """Assemble multi-line source text into a :class:`Program`.

    A label on a line of its own attaches to the next instruction.
    """
    instructions: list[Instruction] = []
    pending_label: str | None = None
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line
        label_match = _LABEL_RE.match(line.split(";")[0].split("#")[0])
        label: str | None = None
        if label_match is not None:
            label = label_match.group(1)
            line = label_match.group(2)
        if label is not None and pending_label is not None:
            raise AssemblyError(
                f"line {line_number}: two consecutive labels "
                f"({pending_label!r}, {label!r}) with no instruction between"
            )
        label = label or pending_label
        pending_label = None
        try:
            instruction = parse_line(line, label=label)
        except AssemblyError as error:
            raise AssemblyError(f"line {line_number}: {error}") from None
        if instruction is None:
            pending_label = label
            continue
        instructions.append(instruction)
    if pending_label is not None:
        raise AssemblyError(f"label {pending_label!r} at end of program has no instruction")
    return Program(instructions, name=name)
