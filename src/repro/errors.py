"""Exception hierarchy for the SAVAT reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from simulation or
measurement problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent.

    Raised, for example, when a cache geometry is not a power of two, a
    measurement distance is non-positive, or an unknown machine name is
    requested from the catalog.
    """


class AssemblyError(ReproError):
    """A program could not be assembled or decoded.

    Raised for unknown mnemonics, malformed operands, duplicate labels,
    and references to labels that were never defined.
    """


class SimulationError(ReproError):
    """The microarchitectural simulation reached an invalid state.

    Raised, for example, when a program runs past its end without a halt,
    when an instruction reads an undefined register, or when the cycle
    budget of a bounded simulation is exhausted.
    """


class CalibrationError(ReproError):
    """EM-model calibration against the reference data failed.

    Raised when the reference matrix cannot be embedded (e.g. wrong
    shape), when the coupling fit is degenerate, or when a calibrated
    machine is requested for a distance with no calibration data and no
    usable propagation fit.
    """


class CellExecutionError(ReproError):
    """A campaign cell failed fatally after exhausting its retry budget.

    Raised by the campaign executor when a cell keeps raising (or keeps
    exceeding its wall-clock timeout) past ``max_retries`` attempts, or
    when every worker slot has been lost to hung cells.  All cells that
    completed before the failure have already been streamed to the
    campaign journal, so a ``resume`` run picks up from where the
    campaign stopped instead of from zero.
    """

    def __init__(
        self,
        message: str,
        *,
        i: int | None = None,
        j: int | None = None,
        pair: str | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(message)
        self.i = i
        self.j = j
        self.pair = pair
        self.attempts = attempts


class JournalError(ReproError):
    """A campaign journal cannot be used for the requested resume.

    Raised when a journal's version does not match the executor's
    :data:`~repro.core.executor.JOURNAL_VERSION`, or when its campaign
    key shows it belongs to a different campaign (other machine,
    distance, config, events, repetitions, or seed) than the one being
    resumed.  The journal is rejected rather than silently replayed.
    """


class MeasurementError(ReproError):
    """A SAVAT measurement could not be carried out.

    Raised when the requested alternation frequency cannot be realized,
    when a signal is too short for the requested resolution bandwidth, or
    when the spectrum band falls outside the digitized range.
    """
