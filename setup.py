"""Setup shim for environments whose setuptools predates full PEP 660 support."""
from setuptools import setup

setup()
